package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"smartflux/internal/durable"
	"smartflux/internal/kvstore"
	"smartflux/internal/kvstore/kvnet"
	"smartflux/internal/obs"
)

// maxFailoverRetries bounds how many map revisions one operation will chase:
// a retry is only granted when a failover (ours or a concurrent caller's)
// actually changed the map, so this is a shards-dying budget, not a spin.
const maxFailoverRetries = 2

// Config configures a cluster client.
type Config struct {
	// Map is the partition table to route by. Required. The client clones
	// it; promotions mutate only the clone.
	Map *Map
	// Client configures each per-shard kvnet connection (retry budget,
	// fault dialer, ...). Health probes reuse its Dial hook so a partition
	// that kills data traffic also kills probes.
	Client kvnet.ClientConfig
	// Seed drives the health prober's backoff jitter; probing is
	// deterministic given the seed and the failure sequence.
	Seed int64
	// ProbeRetries is how many additional pings a suspect primary gets
	// before being declared dead (default 3).
	ProbeRetries int
	// ProbeBackoff is the base delay between probe attempts, doubling per
	// attempt with seeded jitter (default 10ms).
	ProbeBackoff time.Duration
	// FailoverThreshold is how many consecutive failed health-loop sweeps a
	// primary must accumulate before the loop declares it suspect and runs
	// failover (default 2). One slow sweep is a blip; a streak is a death.
	// Reactive (in-operation) failover is not gated — it already probes.
	FailoverThreshold int
	// BreakerThreshold is how many consecutive transport failures against a
	// shard trip its circuit breaker open (default 5); BreakerCooldown is
	// the open-state cooldown in operations before a half-open trial
	// (default 16, doubling per failed trial). See breaker.go.
	BreakerThreshold int
	BreakerCooldown  int
	// OnFailover, when non-nil, is called after every promotion with the
	// shard index and the old and new primary addresses. Test hook.
	OnFailover func(shard int, from, to string)
	// Obs counts per-shard operations, replication records shipped and
	// failovers, and emits one span per failover.
	Obs *obs.Observer
}

// Client is a cluster-aware kvstore client: it routes every row to its shard
// by consistent hash, writes through timestamped replication records (so the
// cluster's merged state is bit-identical to a single-store run), reads and
// scans with scatter-gather, and transparently fails over to a shard's
// replica when the health check declares its primary dead.
//
// Timestamps: in standalone mode the client assigns logical timestamps from
// its own monotonic counter — one tick per mutation op, including deletes of
// missing cells — exactly mirroring a single store's clock discipline. In
// mirror mode (Mirror) records carry the local store's own timestamps.
type Client struct {
	cfg Config

	mu     sync.Mutex
	m      *Map
	ring   *ring
	conns  []*kvnet.Client // lazily dialed, indexed by shard
	ts     uint64          // standalone-mode logical clock
	closed bool
	err    error // first async mirror-ship failure

	probe  *prober
	health *healthLoop // nil until StartHealthLoop

	// breakers holds one circuit breaker per shard (breaker.go); methods
	// are called under mu. probeFails counts each shard's consecutive
	// failed health-loop sweeps toward Config.FailoverThreshold.
	breakers   []*breaker
	probeFails []int

	failoverSeq int // numbers failover and breaker spans

	// onScanPage, when set (package tests only), observes every shard page
	// fetch (shard index, 0-based page number) before it runs — the hook
	// mid-scan failover tests use to kill a primary between pages.
	onScanPage func(shard, page int)

	failovers *obs.Counter // nil-safe when uninstrumented
	shipped   *obs.Counter
	shardOps  []*obs.Counter
}

// New creates a client over the given partition map.
func New(cfg Config) (*Client, error) {
	if cfg.Map == nil || len(cfg.Map.Shards) == 0 {
		return nil, errors.New("cluster: config needs a partition map with at least one shard")
	}
	c := &Client{
		cfg:        cfg,
		m:          cfg.Map.Clone(),
		ring:       cfg.Map.ring(),
		conns:      make([]*kvnet.Client, len(cfg.Map.Shards)),
		probe:      newProber(cfg),
		breakers:   make([]*breaker, len(cfg.Map.Shards)),
		probeFails: make([]int, len(cfg.Map.Shards)),
	}
	for i := range c.breakers {
		c.breakers[i] = newBreaker(cfg, i)
	}
	if cfg.Obs != nil {
		c.failovers = cfg.Obs.Counter("smartflux_cluster_failovers_total")
		c.shipped = cfg.Obs.Counter("smartflux_cluster_repl_records_total")
		c.shardOps = make([]*obs.Counter, len(cfg.Map.Shards))
		for i := range c.shardOps {
			c.shardOps[i] = cfg.Obs.Counter(fmt.Sprintf("smartflux_cluster_ops_total{shard=\"%d\"}", i))
		}
	}
	return c, nil
}

// Map returns a copy of the client's current partition map (promotions
// included).
func (c *Client) Map() *Map {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.Clone()
}

// Err returns the first asynchronous failure a mirror subscription hit (nil
// when every observed mutation shipped).
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// shardFor maps a row to its owning shard.
func (c *Client) shardFor(row string) int { return c.ring.shardFor(row) }

// nextTS draws the next standalone-mode logical timestamp.
func (c *Client) nextTS() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ts++
	return c.ts
}

// conn returns shard's connection (dialing if needed), its primary address
// and the map version it belongs to.
func (c *Client) conn(shard int) (*kvnet.Client, string, int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, "", 0, errors.New("cluster: client closed")
	}
	addr := c.m.Shards[shard].Primary
	if c.conns[shard] == nil {
		cl, err := kvnet.DialConfig(addr, c.cfg.Client)
		if err != nil {
			return nil, addr, c.m.Version, err
		}
		c.conns[shard] = cl
	}
	return c.conns[shard], addr, c.m.Version, nil
}

// withShard runs fn against shard's primary, fast-failing when the shard's
// circuit breaker is open, and failing over on transport-level failures or
// fencing rejections. Application errors (the op executed server-side)
// return immediately. fn must be idempotent — reads are, and writes are
// replication records that replay idempotently — because a retry after
// failover may re-execute work the dead primary already applied.
//
// Breaker accounting: any server response — success, application error, or
// a fencing rejection — is transport health and closes the breaker; only
// dial and I/O failures count against it. An ErrFenced response means the
// node is alive but this client's map is behind its timeline, so the
// replica is promoted without a liveness probe (probing would find the
// demoted node perfectly healthy and refuse the failover forever).
func (c *Client) withShard(shard int, fn func(cl *kvnet.Client) error) error {
	if shard < len(c.shardOps) {
		c.shardOps[shard].Inc()
	}
	var lastErr error
	for attempt := 0; attempt <= maxFailoverRetries; attempt++ {
		if err := c.breakerAllow(shard); err != nil {
			return err
		}
		cl, addr, ver, err := c.conn(shard)
		if err == nil {
			err = fn(cl)
			if err == nil {
				c.breakerOutcome(shard, true)
				return nil
			}
			if errors.Is(err, kvnet.ErrFenced) {
				c.breakerOutcome(shard, true)
				lastErr = err
				if !c.failoverFenced(shard, addr, ver) {
					return err
				}
				continue
			}
			if !kvnet.IsTransport(err) {
				c.breakerOutcome(shard, true)
				return err
			}
		}
		c.breakerOutcome(shard, false)
		lastErr = err
		if !c.failover(shard, addr, ver) {
			return err
		}
	}
	return lastErr
}

// breakerAllow consults shard's circuit breaker; an open breaker fast-fails
// with an ErrUnavailable-wrapping error, spending no retry budget and no
// network round-trip.
func (c *Client) breakerAllow(shard int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.breakers[shard].allow() {
		return fmt.Errorf("%w: shard %d circuit breaker open", kvnet.ErrUnavailable, shard)
	}
	return nil
}

// breakerOutcome feeds one operation's transport verdict to shard's breaker
// and emits a span when this failure trips it open.
func (c *Client) breakerOutcome(shard int, ok bool) {
	c.mu.Lock()
	if ok {
		c.breakers[shard].onSuccess()
		c.mu.Unlock()
		return
	}
	tripped := c.breakers[shard].onFailure()
	var sp *obs.Span
	if tripped && c.cfg.Obs.Spanning() {
		sp = c.cfg.Obs.RootSpan(fmt.Sprintf("cluster/breaker%d", c.failoverSeq), "breaker", "cluster")
		c.failoverSeq++
	}
	c.mu.Unlock()
	if sp != nil {
		sp.SetAttr("shard", fmt.Sprintf("%d", shard))
		sp.SetAttr("state", "open")
		sp.End()
	}
}

// failover decides whether a failed operation against shard should retry:
// true when the partition map has moved past the version the caller used
// (because this call promoted the replica, or a concurrent caller already
// did). The suspect primary gets ProbeRetries+1 pings with seeded backoff
// first — a transient blip heals without a promotion.
func (c *Client) failover(shard int, addr string, seenVersion int) bool {
	c.mu.Lock()
	if c.m.Version != seenVersion {
		c.mu.Unlock()
		return true // someone already moved the map; retry against it
	}
	replica := c.m.Shards[shard].Replica
	c.mu.Unlock()

	if !c.probe.dead(addr) {
		return false // primary alive: the failure was the op's, not the shard's
	}
	if replica == "" {
		return false // dead and unreplicated: nothing to promote
	}
	return c.promote(shard, addr, seenVersion)
}

// failoverFenced handles a fencing rejection: the primary answered, so it is
// alive, but it has demoted itself (or holds a higher epoch than our map
// stamps), meaning the shard's authority has moved. No liveness probe —
// the node would pass it — just promote the replica and retry there.
func (c *Client) failoverFenced(shard int, addr string, seenVersion int) bool {
	c.mu.Lock()
	if c.m.Version != seenVersion {
		c.mu.Unlock()
		return true // a concurrent caller already moved the map
	}
	replica := c.m.Shards[shard].Replica
	c.mu.Unlock()
	if replica == "" {
		return false // fenced and unreplicated: nowhere to go
	}
	return c.promote(shard, addr, seenVersion)
}

// promote is the shared failover tail: bump the map (advancing the shard's
// fencing epoch), drop the dead primary's connection, reset the shard's
// breaker (it was guarding an address we no longer talk to), emit the
// failover span and counter, and push the new map to the surviving nodes.
func (c *Client) promote(shard int, addr string, seenVersion int) bool {
	c.mu.Lock()
	if c.m.Version != seenVersion {
		c.mu.Unlock()
		return true
	}
	if err := c.m.Promote(shard); err != nil {
		c.mu.Unlock()
		return false
	}
	if c.conns[shard] != nil {
		_ = c.conns[shard].Close()
		c.conns[shard] = nil
	}
	c.breakers[shard].reset()
	c.probeFails[shard] = 0
	newPrimary := c.m.Shards[shard].Primary
	encoded := c.m.Encode()
	var sp *obs.Span
	if c.cfg.Obs.Spanning() {
		sp = c.cfg.Obs.RootSpan(fmt.Sprintf("cluster/failover%d", c.failoverSeq), "failover", "cluster")
		c.failoverSeq++
	}
	c.mu.Unlock()

	c.failovers.Inc()
	if sp != nil {
		sp.SetAttr("shard", fmt.Sprintf("%d", shard))
		sp.SetAttr("from", addr)
		sp.SetAttr("to", newPrimary)
		sp.End()
	}
	// Best-effort: tell the surviving nodes about the new map so late
	// joiners can fetch it from any of them.
	c.pushMap(encoded)
	if c.cfg.OnFailover != nil {
		c.cfg.OnFailover(shard, addr, newPrimary)
	}
	return true
}

// pushMap offers the encoded map to every reachable primary. Failures are
// ignored: the map's home is this client; node copies are a convenience.
func (c *Client) pushMap(encoded []byte) {
	c.mu.Lock()
	shards := len(c.m.Shards)
	c.mu.Unlock()
	for s := 0; s < shards; s++ {
		if cl, _, _, err := c.conn(s); err == nil {
			_ = cl.MapSet(encoded)
		}
	}
}

// ship sends replication records to shard with failover retry, stamping
// each frame with the shard's current fencing epoch. The epoch is read
// per attempt, inside the retry loop: after a fenced failover the map has
// advanced, and the retry must carry the promoted epoch or the new primary
// would reject it as stale too.
func (c *Client) ship(shard int, recs [][]byte) error {
	err := c.withShard(shard, func(cl *kvnet.Client) error {
		c.mu.Lock()
		epoch := c.m.Shards[shard].Epoch
		c.mu.Unlock()
		return cl.ReplEpoch(epoch, recs)
	})
	if err == nil {
		c.shipped.Add(uint64(len(recs)))
	}
	return err
}

// CreateTable ensures a table exists cluster-wide: the create record goes to
// every shard (rows of the table may land anywhere) and replicates to every
// follower. Idempotent, like kvstore.Store.EnsureTable.
func (c *Client) CreateTable(name string, maxVersions int) error {
	if name == "" {
		return kvstore.ErrEmptyKey
	}
	rec := durable.EncodeCreateRecord(name, maxVersions)
	c.mu.Lock()
	shards := len(c.m.Shards)
	c.mu.Unlock()
	for s := 0; s < shards; s++ {
		if err := c.ship(s, [][]byte{rec}); err != nil {
			return err
		}
	}
	return nil
}

// Put writes a value, stamping it with the client's logical clock and
// routing it to the row's shard as a replication record.
func (c *Client) Put(table, row, column string, value []byte) error {
	if row == "" || column == "" {
		return kvstore.ErrEmptyKey
	}
	rec := durable.EncodeMutationRecord(kvstore.Mutation{
		Table: table, Row: row, Column: column, New: value,
		Timestamp: c.nextTS(), Kind: kvstore.MutationPut,
	})
	return c.ship(c.shardFor(row), [][]byte{rec})
}

// PutFloat writes an encoded float64.
func (c *Client) PutFloat(table, row, column string, v float64) error {
	return c.Put(table, row, column, kvstore.EncodeFloat(v))
}

// Delete removes a cell. Like a single store it consumes a clock tick even
// when the cell does not exist — timestamp parity with the single-store run
// is the point of the client-side clock.
func (c *Client) Delete(table, row, column string) error {
	if row == "" || column == "" {
		return kvstore.ErrEmptyKey
	}
	rec := durable.EncodeMutationRecord(kvstore.Mutation{
		Table: table, Row: row, Column: column,
		Timestamp: c.nextTS(), Kind: kvstore.MutationDelete,
	})
	return c.ship(c.shardFor(row), [][]byte{rec})
}

// Apply applies a batch of ops in order, each stamped with its own clock
// tick (matching kvstore.Table.Apply) and routed to its row's shard.
// Atomicity holds per shard, not across shards: ops for one shard land in
// one replication frame, but a multi-shard batch is several frames.
func (c *Client) Apply(table string, ops []kvstore.Op) error {
	if len(ops) == 0 {
		return nil
	}
	for _, op := range ops {
		if op.Row == "" || op.Column == "" {
			return kvstore.ErrEmptyKey
		}
	}
	c.mu.Lock()
	shards := len(c.m.Shards)
	c.mu.Unlock()
	perShard := make([][][]byte, shards)
	for _, op := range ops {
		kind := kvstore.MutationPut
		if op.Delete {
			kind = kvstore.MutationDelete
		}
		rec := durable.EncodeMutationRecord(kvstore.Mutation{
			Table: table, Row: op.Row, Column: op.Column, New: op.Value,
			Timestamp: c.nextTS(), Kind: kind,
		})
		s := c.shardFor(op.Row)
		perShard[s] = append(perShard[s], rec)
	}
	for s, recs := range perShard {
		if len(recs) == 0 {
			continue
		}
		if err := c.ship(s, recs); err != nil {
			return err
		}
	}
	return nil
}

// Get reads the latest value of a cell from its shard.
func (c *Client) Get(table, row, column string) (value []byte, found bool, err error) {
	err = c.withShard(c.shardFor(row), func(cl *kvnet.Client) error {
		value, found, err = cl.Get(table, row, column)
		return err
	})
	return value, found, err
}

// GetFloat reads a float64-encoded cell.
func (c *Client) GetFloat(table, row, column string) (float64, bool, error) {
	raw, found, err := c.Get(table, row, column)
	if err != nil || !found {
		return 0, found, err
	}
	v, err := kvstore.DecodeFloat(raw)
	if err != nil {
		return 0, false, err
	}
	return v, true, nil
}

// Mirror attaches the client to a live local store: existing state is
// synced to the cluster (create records plus every retained version, oldest
// first), then every subsequent local mutation ships as it happens, carrying
// its local timestamp. The local store stays the engine's source of truth —
// the cluster becomes a replicated, sharded copy whose merged dump is
// bit-identical to it. Ship failures after attach surface through Err.
func (c *Client) Mirror(s *kvstore.Store) error {
	for _, name := range s.TableNames() {
		t, err := s.Table(name)
		if err != nil {
			return err
		}
		if err := c.mirrorTable(t); err != nil {
			return err
		}
	}
	s.OnTableCreate(func(t *kvstore.Table) {
		if err := c.mirrorTable(t); err != nil {
			c.recordErr(err)
		}
	})
	return nil
}

// mirrorTable broadcasts a table's create record, syncs its current
// contents, and subscribes to its future mutations.
func (c *Client) mirrorTable(t *kvstore.Table) error {
	if err := c.CreateTable(t.Name(), t.MaxVersions()); err != nil {
		return err
	}
	for _, cell := range t.Scan(kvstore.ScanOptions{}) {
		versions := t.GetVersions(cell.Row, cell.Column, 0) // newest first
		recs := make([][]byte, 0, len(versions))
		for i := len(versions) - 1; i >= 0; i-- {
			recs = append(recs, durable.EncodeMutationRecord(kvstore.Mutation{
				Table: t.Name(), Row: cell.Row, Column: cell.Column,
				New: versions[i].Value, Timestamp: versions[i].Timestamp,
				Kind: kvstore.MutationPut,
			}))
		}
		if err := c.ship(c.shardFor(cell.Row), recs); err != nil {
			return err
		}
	}
	t.Subscribe(kvstore.ObserverFunc(func(m kvstore.Mutation) {
		rec := durable.EncodeMutationRecord(m)
		if err := c.ship(c.shardFor(m.Row), [][]byte{rec}); err != nil {
			c.recordErr(err)
		}
	}))
	return nil
}

// recordErr retains the first asynchronous ship failure for Err.
func (c *Client) recordErr(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
}

// Close stops the health loop (if started) and closes every shard
// connection. Idempotent.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	health := c.health
	c.health = nil
	conns := c.conns
	c.conns = make([]*kvnet.Client, len(conns))
	c.mu.Unlock()
	if health != nil {
		health.stop()
	}
	for _, cl := range conns {
		if cl != nil {
			_ = cl.Close()
		}
	}
	return nil
}
