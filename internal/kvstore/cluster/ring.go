// Package cluster shards a kvstore across N kvnet servers by consistent-
// hashed row key, replicates each shard's primary to a follower by shipping
// timestamped replication records, and fails over to the follower when a
// seeded health check declares the primary dead (DESIGN.md §14).
//
// The determinism contract of the single store carries over: because every
// mutation crosses the wire as an explicit-timestamp replication record and
// applies through the kvstore replay operations, an N-shard cluster's merged
// dump — version histories and logical timestamps included — is bit-identical
// to the single-store run of the same workload, regardless of shard count,
// shipping interleavings, or a mid-run primary kill and promotion.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVnodes is the number of ring points each shard contributes when the
// partition map does not override it. More vnodes smooth the row
// distribution; the count must be identical on every participant or rows
// would route differently, so it travels in the Map.
const DefaultVnodes = 64

// hashKey is the ring's hash function: 64-bit FNV-1a finished with a
// murmur-style avalanche mix. Raw FNV-1a leaves near-identical keys — the
// "row-0017"/"row-0018" shape real workloads produce — in narrow hash bands,
// which skews the ring badly even with many vnodes; the finalizer spreads
// every input bit across all 64 output bits. Stable across processes and
// platforms — the partition map depends on every participant hashing rows
// identically.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// ring is a consistent-hash ring mapping row keys to shard indices.
type ring struct {
	hashes []uint64 // sorted ring point hashes
	shards []int    // shards[i] owns hashes[i]
}

// newRing builds the ring for a shard count: every shard contributes vnodes
// points hashed from a stable label, so the layout is a pure function of
// (shards, vnodes) and adding a shard moves only ~1/N of the key space.
func newRing(shards, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	type point struct {
		hash  uint64
		shard int
	}
	points := make([]point, 0, shards*vnodes)
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			label := "shard-" + strconv.Itoa(s) + "/vnode-" + strconv.Itoa(v)
			points = append(points, point{hash: hashKey(label), shard: s})
		}
	}
	// Ties (astronomically unlikely) break by shard index so the layout
	// stays total-ordered and identical everywhere.
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		return points[i].shard < points[j].shard
	})
	r := &ring{hashes: make([]uint64, len(points)), shards: make([]int, len(points))}
	for i, p := range points {
		r.hashes[i] = p.hash
		r.shards[i] = p.shard
	}
	return r
}

// shardFor maps a row key to its owning shard: the first ring point at or
// after the row's hash, wrapping to the first point.
func (r *ring) shardFor(row string) int {
	h := hashKey(row)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.shards[i]
}
