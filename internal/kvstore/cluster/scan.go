package cluster

// Scatter-gather scans. Rows are sharded, so a cluster scan pulls from every
// shard and merges in key order. Each shard is paged through a cursor of
// plain ScanOptions (StartRow = last merged row, inclusive), which makes a
// page fetch stateless on the server: if a shard's primary dies mid-scan,
// the failover machinery promotes its replica and the next page fetch
// resumes from the cursor against the new primary — no duplicates (cells at
// or before the cursor are skipped client-side) and no gaps (the replica
// holds every acked write). A (row, column) lives on exactly one shard, so
// the merge never sees cross-shard duplicates.

import (
	"smartflux/internal/kvstore"
	"smartflux/internal/kvstore/kvnet"
)

// scanPageSize is the per-shard page fetch size in cells.
const scanPageSize = 256

// keyLess orders cells by (row, column).
func keyLess(a, b kvstore.Cell) bool {
	if a.Row != b.Row {
		return a.Row < b.Row
	}
	return a.Column < b.Column
}

// shardIter pages through one shard's scan results.
type shardIter struct {
	c     *Client
	shard int
	table string
	opts  kvstore.ScanOptions

	buf  []kvstore.Cell
	idx  int
	done bool

	// Resume cursor: the last cell handed out. Pages re-fetch from
	// lastRow inclusive and skip cells at or before (lastRow, lastCol).
	started          bool
	lastRow, lastCol string

	limit int // page size; doubles when a wide row stalls progress
	pages int // fetches issued, for the test hook
}

// next returns the iterator's current head cell without consuming it.
func (it *shardIter) next() (kvstore.Cell, bool, error) {
	for it.idx >= len(it.buf) {
		if it.done {
			return kvstore.Cell{}, false, nil
		}
		if err := it.fetch(); err != nil {
			return kvstore.Cell{}, false, err
		}
	}
	return it.buf[it.idx], true, nil
}

// advance consumes the current head, updating the resume cursor.
func (it *shardIter) advance() {
	cell := it.buf[it.idx]
	it.started, it.lastRow, it.lastCol = true, cell.Row, cell.Column
	it.idx++
}

// fetch pulls the next page from the shard, through the failover-aware
// wrapper. A full page whose cells were all at or before the cursor (a row
// wider than the page) doubles the page size and refetches, so progress is
// guaranteed.
func (it *shardIter) fetch() error {
	if it.c.onScanPage != nil {
		it.c.onScanPage(it.shard, it.pages)
	}
	it.pages++
	opts := it.opts
	if it.started {
		opts.StartRow = it.lastRow
	}
	opts.Limit = it.limit
	var cells []kvstore.Cell
	err := it.c.withShard(it.shard, func(cl *kvnet.Client) error {
		var err error
		cells, err = cl.Scan(it.table, opts)
		return err
	})
	if err != nil {
		return err
	}
	full := len(cells) == it.limit
	if it.started {
		cells = skipThroughCursor(cells, it.lastRow, it.lastCol)
	}
	it.buf, it.idx = cells, 0
	if !full {
		it.done = true
	} else if len(cells) == 0 {
		it.limit *= 2 // wide row: everything fetched was already merged
	}
	return nil
}

// skipThroughCursor drops cells at or before the (row, col) cursor.
func skipThroughCursor(cells []kvstore.Cell, row, col string) []kvstore.Cell {
	i := 0
	for i < len(cells) {
		c := cells[i]
		if c.Row > row || (c.Row == row && c.Column > col) {
			break
		}
		i++
	}
	return cells[i:]
}

// Scan returns every matching cell across all shards, merged in (row,
// column) order — the same order a single store's Scan returns. opts.Limit
// bounds the merged total.
func (c *Client) Scan(table string, opts kvstore.ScanOptions) ([]kvstore.Cell, error) {
	return c.scatterGather(table, opts, false)
}

// scatterGather runs the k-way paged merge. With versions set, each shard
// streams every retained version per cell (newest first) and the merge
// preserves those runs — the cluster dump path.
func (c *Client) scatterGather(table string, opts kvstore.ScanOptions, versions bool) ([]kvstore.Cell, error) {
	c.mu.Lock()
	shards := len(c.m.Shards)
	c.mu.Unlock()

	limit := opts.Limit
	opts.Limit = 0 // per-shard paging owns the fetch size
	iters := make([]*shardIter, shards)
	for s := 0; s < shards; s++ {
		iters[s] = &shardIter{c: c, shard: s, table: table, opts: opts, limit: scanPageSize}
	}
	if versions {
		// Version dumps are a verification path: fetch whole shards in one
		// ScanVersions call each, no paging.
		for _, it := range iters {
			it.done = true
			shard := it.shard
			var cells []kvstore.Cell
			err := c.withShard(shard, func(cl *kvnet.Client) error {
				var err error
				cells, err = cl.ScanVersions(table, opts)
				return err
			})
			if err != nil {
				return nil, err
			}
			it.buf = cells
		}
	}

	var out []kvstore.Cell
	for {
		best := -1
		var bestCell kvstore.Cell
		for _, it := range iters {
			cell, ok, err := it.next()
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			// Ties on (row, column) occur only within one shard's version
			// run, never across shards — rows are sharded — so strict less
			// keeps the first-seen iterator and preserves version order.
			if best == -1 || keyLess(cell, bestCell) {
				best, bestCell = it.shard, cell
			}
		}
		if best == -1 {
			return out, nil
		}
		iters[best].advance()
		out = append(out, bestCell)
		if limit > 0 && len(out) == limit {
			return out, nil
		}
	}
}

// ScanVersions returns every retained version of every matching cell across
// all shards — newest first per cell, cells in key order — exactly what a
// per-cell GetVersions sweep over a single store would produce. This is the
// dump path the determinism contract is verified through.
func (c *Client) ScanVersions(table string, opts kvstore.ScanOptions) ([]kvstore.Cell, error) {
	return c.scatterGather(table, opts, true)
}
