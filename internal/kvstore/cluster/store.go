package cluster

// Store / Table adapt the cluster client to the error-returning store shape
// workflow processors already consume (the same shape as fault.Store), so a
// pipeline built against a wrapped single store runs against a cluster by
// swapping the wrapper.

import (
	"smartflux/internal/kvstore"
)

// Store is a cluster-backed view with the error-returning store interface.
type Store struct {
	c *Client
}

// AsStore wraps the client in the store-shaped adapter.
func (c *Client) AsStore() *Store { return &Store{c: c} }

// Client returns the underlying cluster client.
func (s *Store) Client() *Client { return s.c }

// EnsureTable creates the table cluster-wide if missing.
func (s *Store) EnsureTable(name string, opts kvstore.TableOptions) (*Table, error) {
	if err := s.c.CreateTable(name, opts.MaxVersions); err != nil {
		return nil, err
	}
	return &Table{c: s.c, name: name}, nil
}

// Table returns a view of the named table. Existence is not verified up
// front — like an HBase client, a wrong name surfaces on first use.
func (s *Store) Table(name string) (*Table, error) {
	if name == "" {
		return nil, kvstore.ErrEmptyKey
	}
	return &Table{c: s.c, name: name}, nil
}

// Table is a cluster-backed view of one table.
type Table struct {
	c    *Client
	name string
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Put writes a value through the cluster.
func (t *Table) Put(row, column string, value []byte) error {
	return t.c.Put(t.name, row, column, value)
}

// PutFloat writes an encoded float64.
func (t *Table) PutFloat(row, column string, v float64) error {
	return t.c.PutFloat(t.name, row, column, v)
}

// Get reads the latest value of a cell.
func (t *Table) Get(row, column string) ([]byte, bool, error) {
	return t.c.Get(t.name, row, column)
}

// GetFloat reads a float64-encoded cell.
func (t *Table) GetFloat(row, column string) (float64, bool, error) {
	return t.c.GetFloat(t.name, row, column)
}

// Delete removes a cell.
func (t *Table) Delete(row, column string) error {
	return t.c.Delete(t.name, row, column)
}

// Scan returns matching cells merged across shards in key order.
func (t *Table) Scan(opts kvstore.ScanOptions) ([]kvstore.Cell, error) {
	return t.c.Scan(t.name, opts)
}

// Apply applies a batch in order (atomic per shard; see Client.Apply).
func (t *Table) Apply(b *kvstore.Batch) error {
	return t.c.Apply(t.name, b.Ops())
}
