package cluster

// Fencing, circuit breaker and health-threshold tests. The scenarios here
// are the unit-level half of the partition chaos suite (partition_chaos_test
// at the repo root): epoch stamps reject stale-timeline writes, demoted
// primaries fence themselves and ack nothing after the fence, breakers trip
// deterministically, and the health loop needs a failure streak — not one
// blip — to promote.

import (
	"errors"
	"fmt"
	"testing"

	"smartflux/internal/durable"
	"smartflux/internal/fault"
	"smartflux/internal/kvstore"
	"smartflux/internal/kvstore/kvnet"
	"smartflux/internal/obs"
)

// TestFencingStaleEpochRejectedAfterFailover is the split-brain story end to
// end: a primary dies behind a partition, its replica is promoted (epoch 2),
// the old primary heals still believing it owns the shard at epoch 1. A
// stale-timeline write to it must not be acked: the ship to its follower —
// the very node promoted over it — is rejected as fenced, the old primary
// self-demotes, and the write fails loudly. Reset clears the fence for a
// rejoin.
func TestFencingStaleEpochRejectedAfterFailover(t *testing.T) {
	inj := fault.New(fault.Policy{})
	tc := startCluster(t, 1, true, inj)
	c := tc.client(Config{ProbeRetries: 1})
	ref := kvstore.New()
	rt, _ := ref.EnsureTable("t", kvstore.TableOptions{MaxVersions: 3})
	if err := c.CreateTable("t", 3); err != nil {
		t.Fatal(err)
	}
	put := func(row string, val []byte) {
		t.Helper()
		if err := c.Put("t", row, "c", val); err != nil {
			t.Fatalf("Put %s: %v", row, err)
		}
		if err := rt.Put(row, "c", val); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		put(fmt.Sprintf("r%02d", i), []byte{byte(i)})
	}

	victim, promoted := tc.primary[0], tc.follower[0]
	inj.Partition(victim.Addr())
	for i := 10; i < 20; i++ {
		put(fmt.Sprintf("r%02d", i), []byte{byte(i)})
	}
	if got := c.Map().Shards[0]; got.Primary != promoted.Addr() || got.Epoch != 2 {
		t.Fatalf("post-failover shard = %+v, want promoted primary at epoch 2", got)
	}
	if promoted.Epoch() != 2 {
		t.Fatalf("promoted node epoch = %d, want 2 (learned from the map push)", promoted.Epoch())
	}

	// The old primary heals, unfenced and still at epoch 1 — it never saw
	// the new map. A stale client writes to it directly.
	inj.Heal(victim.Addr())
	if victim.Fenced() {
		t.Fatal("victim fenced before any stale write; nothing should have told it")
	}
	cl, err := kvnet.Dial(victim.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	ghost := durable.EncodeMutationRecord(kvstore.Mutation{
		Table: "t", Row: "ghost", Column: "c", New: []byte("lost-timeline"),
		Timestamp: 999, Kind: kvstore.MutationPut,
	})
	if err := cl.ReplEpoch(1, [][]byte{ghost}); !errors.Is(err, kvnet.ErrFenced) {
		t.Fatalf("stale-timeline write = %v, want ErrFenced", err)
	}
	if !victim.Fenced() {
		t.Fatal("victim did not self-demote after its ship was fenced")
	}
	// Fenced means read-only: every later write is refused at the gate,
	// while reads still serve.
	if err := cl.Put("t", "ghost2", "c", []byte("x")); !errors.Is(err, kvnet.ErrFenced) {
		t.Fatalf("write to fenced node = %v, want ErrFenced", err)
	}
	if _, _, err := cl.Get("t", "r00", "c"); err != nil {
		t.Fatalf("read from fenced node: %v (fenced is read-only, not dead)", err)
	}

	// The promoted timeline never saw the ghost, and the cluster's merged
	// dump still equals the reference store of acked writes.
	if pd := storeDump(t, promoted.Store(), "t"); pd != storeDump(t, ref, "t") {
		t.Fatalf("promoted store drifted from acked reference:\n%s", pd)
	}
	if got, want := clusterDump(t, c, "t"), storeDump(t, ref, "t"); got != want {
		t.Fatalf("cluster dump differs from acked reference:\nwant:\n%sgot:\n%s", want, got)
	}

	// Reset clears data, epoch, fence and the cached map; the node rejoins
	// as the promoted primary's follower and must stay unfenced.
	victim.Reset()
	if victim.Fenced() || victim.Epoch() != 0 {
		t.Fatalf("Reset left fencing state: fenced=%v epoch=%d", victim.Fenced(), victim.Epoch())
	}
	if err := promoted.AttachFollower(victim.Addr()); err != nil {
		t.Fatalf("rejoin after reset: %v", err)
	}
	if err := c.Put("t", "r99", "c", []byte("post-rejoin")); err != nil {
		t.Fatal(err)
	}
	if vd, pd := storeDump(t, victim.Store(), "t"), storeDump(t, promoted.Store(), "t"); vd != pd {
		t.Fatalf("rejoined follower differs:\npromoted:\n%srejoined:\n%s", pd, vd)
	}
	if victim.Fenced() {
		t.Fatal("rejoined follower re-fenced itself")
	}
}

// TestClientFencedFailover: a cluster client holding a stale map writes to a
// healed demoted primary; the fencing rejection must route the client to the
// promoted replica — without a liveness probe, which the alive-but-demoted
// node would pass — and the retried write must be acked there. Zero acked
// writes lost, exactly one failover on the stale client.
func TestClientFencedFailover(t *testing.T) {
	inj := fault.New(fault.Policy{})
	tc := startCluster(t, 1, true, inj)
	fresh := tc.client(Config{ProbeRetries: 1})
	var staleFailovers []string
	stale := tc.client(Config{ProbeRetries: 1, OnFailover: func(shard int, from, to string) {
		staleFailovers = append(staleFailovers, fmt.Sprintf("%d:%s->%s", shard, from, to))
	}})
	if err := fresh.CreateTable("t", 3); err != nil {
		t.Fatal(err)
	}

	victim, promoted := tc.primary[0], tc.follower[0]
	inj.Partition(victim.Addr())
	if err := fresh.Put("t", "r1", "c", []byte("promotes")); err != nil {
		t.Fatal(err)
	}
	if fresh.Map().Shards[0].Epoch != 2 {
		t.Fatal("fresh client did not promote to epoch 2")
	}
	inj.Heal(victim.Addr())

	// The stale client still routes to the healed old primary at epoch 1.
	// Its write is applied there but the ship is fenced, so the node demotes
	// and the client follows the rejection to the promoted replica.
	if err := stale.Put("t", "r2", "c", []byte("acked-once")); err != nil {
		t.Fatalf("stale client write across fenced failover: %v", err)
	}
	if len(staleFailovers) != 1 {
		t.Fatalf("stale client failovers = %v, want exactly one", staleFailovers)
	}
	if got := stale.Map().Shards[0]; got.Primary != promoted.Addr() || got.Epoch != 2 {
		t.Fatalf("stale client map = %+v, want promoted primary at epoch 2", got)
	}
	if !victim.Fenced() {
		t.Fatal("old primary did not fence on the stale ship")
	}
	// The acked write lives on the promoted timeline, not just the zombie.
	pt, err := promoted.Store().Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if v, found := pt.Get("r2", "c"); !found || string(v) != "acked-once" {
		t.Fatalf("acked write missing from promoted store: %q found=%v", v, found)
	}
	if v, found, err := stale.Get("t", "r2", "c"); err != nil || !found || string(v) != "acked-once" {
		t.Fatalf("Get through stale client = %q %v %v", v, found, err)
	}
}

// TestMapPushDemotesPriorPrimary: learning a map that moved past you is a
// demotion. A node listed as a shard's replica fences only when its own
// previous map listed it as that shard's primary — a fresh follower seeing
// its first map must not fence at startup.
func TestMapPushDemotesPriorPrimary(t *testing.T) {
	a, err := NewNode(NodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	b, err := NewNode(NodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })

	m := NewMap([]string{a.Addr()})
	if err := m.SetReplica(0, b.Addr()); err != nil {
		t.Fatal(err)
	}
	a.SetMap(m)
	b.SetMap(m)
	if a.Epoch() != 1 || a.Fenced() {
		t.Fatalf("primary after first map: epoch=%d fenced=%v, want 1/false", a.Epoch(), a.Fenced())
	}
	if b.Fenced() {
		t.Fatal("fresh replica fenced itself on its first map")
	}

	if err := m.Promote(0); err != nil {
		t.Fatal(err)
	}
	a.SetMap(m)
	b.SetMap(m)
	if !a.Fenced() || a.Epoch() != 2 {
		t.Fatalf("demoted prior primary: epoch=%d fenced=%v, want 2/true", a.Epoch(), a.Fenced())
	}
	if b.Fenced() || b.Epoch() != 2 {
		t.Fatalf("promoted node: epoch=%d fenced=%v, want 2/false", b.Epoch(), b.Fenced())
	}

	// The fence bites at the wire: writes refused, reads served.
	cl, err := kvnet.Dial(a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	if err := cl.CreateTable("t", 0); !errors.Is(err, kvnet.ErrFenced) {
		t.Fatalf("create on demoted node = %v, want ErrFenced", err)
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping on demoted node: %v", err)
	}
}

// TestBreakerOpensFastFailsAndRecovers drives a shard breaker through its
// full cycle — closed, tripped open by consecutive transport failures,
// fast-failing without network, half-open trial after the op-counted
// cooldown, closed again after heal — and asserts the whole trajectory is
// deterministic: two same-seed runs produce identical counter values.
func TestBreakerOpensFastFailsAndRecovers(t *testing.T) {
	run := func(seed int64) (opens, fastFails uint64) {
		inj := fault.New(fault.Policy{})
		tc := startCluster(t, 1, false, inj) // unreplicated: failures stay failures
		o := obs.New(obs.NewRegistry())
		c := tc.client(Config{Obs: o, Seed: seed, ProbeRetries: 1, BreakerThreshold: 2, BreakerCooldown: 4})
		if err := c.CreateTable("t", 0); err != nil {
			t.Fatal(err)
		}
		if err := c.Put("t", "r", "c", []byte("pre")); err != nil {
			t.Fatal(err)
		}

		victim := tc.primary[0].Addr()
		inj.Partition(victim)
		for i := 0; i < 2; i++ { // threshold failures trip it
			if err := c.Put("t", "r", "c", []byte("down")); err == nil {
				t.Fatal("write succeeded against a partitioned unreplicated shard")
			}
		}
		gauge := o.Gauge(`smartflux_breaker_state{shard="0"}`)
		if gauge.Value() != breakerOpen {
			t.Fatalf("breaker state = %v after %d failures, want open", gauge.Value(), 2)
		}
		// Open means fast-fail: a typed unavailability, no probing, no dial.
		preOps := inj.Stats().Ops
		if err := c.Put("t", "r", "c", []byte("fast")); !errors.Is(err, kvnet.ErrUnavailable) {
			t.Fatalf("fast-fail error = %v, want ErrUnavailable", err)
		}
		if got := inj.Stats().Ops; got != preOps {
			t.Fatalf("fast-fail touched the network: injector ops %d -> %d", preOps, got)
		}

		inj.Heal(victim)
		recovered := false
		for i := 0; i < 100; i++ { // burn the cooldown; the trial closes it
			if err := c.Put("t", "r", "c", []byte("back")); err == nil {
				recovered = true
				break
			}
		}
		if !recovered {
			t.Fatal("breaker never recovered after heal")
		}
		if gauge.Value() != breakerClosed {
			t.Fatalf("breaker state = %v after recovery, want closed", gauge.Value())
		}
		return o.Counter(`smartflux_breaker_opens_total{shard="0"}`).Value(),
			o.Counter(`smartflux_breaker_fastfail_total{shard="0"}`).Value()
	}
	o1, f1 := run(42)
	o2, f2 := run(42)
	if o1 != o2 || f1 != f2 {
		t.Fatalf("same-seed breaker runs diverged: opens %d/%d fastfails %d/%d", o1, o2, f1, f2)
	}
	if o1 == 0 || f1 == 0 {
		t.Fatalf("breaker never opened (%d) or never fast-failed (%d)", o1, f1)
	}
}

// TestHealthLoopFailoverThreshold is the flap regression: one failed health
// sweep must not promote — only a streak of FailoverThreshold consecutive
// failures does, and any healthy sweep resets the streak.
func TestHealthLoopFailoverThreshold(t *testing.T) {
	inj := fault.New(fault.Policy{})
	tc := startCluster(t, 1, true, inj)
	failovers := 0
	c := tc.client(Config{
		ProbeRetries:      1,
		FailoverThreshold: 2,
		OnFailover:        func(int, string, string) { failovers++ },
	})
	if err := c.CreateTable("t", 0); err != nil {
		t.Fatal(err)
	}
	victim := tc.primary[0].Addr()

	// A one-sweep blip: no promotion.
	inj.Partition(victim)
	c.probeAll()
	if failovers != 0 {
		t.Fatal("single failed sweep promoted the replica (flap)")
	}
	inj.Heal(victim)
	c.probeAll() // healthy sweep resets the streak
	inj.Partition(victim)
	c.probeAll()
	if failovers != 0 {
		t.Fatal("streak survived a healthy sweep")
	}
	// Sustained failure reaches the threshold and promotes exactly once.
	c.probeAll()
	if failovers != 1 {
		t.Fatalf("failovers = %d after sustained failure, want 1", failovers)
	}
	if got := c.Map().Shards[0].Primary; got != tc.follower[0].Addr() {
		t.Fatalf("primary = %s, want promoted follower", got)
	}
}

// TestScanMidScanPartitionFailsLoud: when a shard's primary dies mid-scan
// and there is no replica to resume on, the scan must fail with an error —
// never return a silently truncated merge.
func TestScanMidScanPartitionFailsLoud(t *testing.T) {
	inj := fault.New(fault.Policy{})
	tc := startCluster(t, 2, false, inj) // unreplicated: nothing to resume on
	c := tc.client(Config{ProbeRetries: 1})
	if err := c.CreateTable("t", 0); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < 1200; i++ {
		if err := c.Put("t", fmt.Sprintf("row-%04d", i), "c", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		total++
	}
	killed := false
	c.onScanPage = func(shard, page int) {
		if shard == 1 && page == 1 && !killed {
			killed = true
			inj.Partition(tc.primary[1].Addr())
		}
	}
	cells, err := c.Scan("t", kvstore.ScanOptions{})
	if !killed {
		t.Fatal("kill hook never fired; shard 1 needed no second page — grow the dataset")
	}
	if err == nil {
		t.Fatalf("mid-scan partition of an unreplicated shard returned %d/%d cells with no error (silent truncation)", len(cells), total)
	}
}
