package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"smartflux/internal/fault"
	"smartflux/internal/kvstore"
	"smartflux/internal/kvstore/kvnet"
)

// --- harness ---------------------------------------------------------------

// testCluster is N primaries, optionally N followers, and the partition map
// over them. All nodes run in-process; the injector (when non-nil) wraps
// every primary's listener and the client dial path, so fault.Partition of a
// primary address looks like a dead shard from everywhere.
type testCluster struct {
	t        *testing.T
	primary  []*Node
	follower []*Node
	m        *Map
	inj      *fault.Injector
}

func startCluster(t *testing.T, shards int, replicated bool, inj *fault.Injector) *testCluster {
	t.Helper()
	tc := &testCluster{t: t, inj: inj}
	addrs := make([]string, shards)
	for s := 0; s < shards; s++ {
		cfg := NodeConfig{}
		if inj != nil {
			ln := rawListener(t)
			cfg.Listener = fault.WrapListener(ln, inj)
		}
		n, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tc.primary = append(tc.primary, n)
		addrs[s] = n.Addr()
	}
	tc.m = NewMap(addrs)
	if replicated {
		for s := 0; s < shards; s++ {
			f, err := NewNode(NodeConfig{})
			if err != nil {
				t.Fatal(err)
			}
			tc.follower = append(tc.follower, f)
			if err := tc.primary[s].AttachFollower(f.Addr()); err != nil {
				t.Fatal(err)
			}
			if err := tc.m.SetReplica(s, f.Addr()); err != nil {
				t.Fatal(err)
			}
		}
	}
	t.Cleanup(func() {
		for _, n := range tc.primary {
			_ = n.Close()
		}
		for _, n := range tc.follower {
			_ = n.Close()
		}
	})
	return tc
}

func rawListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// client builds a cluster client over the cluster's map, dialing through the
// injector when one is installed.
func (tc *testCluster) client(cfg Config) *Client {
	tc.t.Helper()
	cfg.Map = tc.m
	if tc.inj != nil && cfg.Client.Dial == nil {
		cfg.Client.Dial = fault.Dialer(tc.inj)
	}
	if cfg.ProbeBackoff == 0 {
		cfg.ProbeBackoff = time.Millisecond
	}
	c, err := New(cfg)
	if err != nil {
		tc.t.Fatal(err)
	}
	tc.t.Cleanup(func() { _ = c.Close() })
	return c
}

// dumpCells formats version-expanded cells the way the chaos suite dumps a
// store: one line per retained version, in key order, newest first per cell.
func dumpCells(table string, cells []kvstore.Cell) string {
	var b bytes.Buffer
	for _, c := range cells {
		fmt.Fprintf(&b, "%s %s/%s @%d = %x\n", table, c.Row, c.Column, c.Version.Timestamp, c.Version.Value)
	}
	return b.String()
}

// clusterDump merges every shard's version history for the tables.
func clusterDump(t *testing.T, c *Client, tables ...string) string {
	t.Helper()
	var b bytes.Buffer
	for _, table := range tables {
		cells, err := c.ScanVersions(table, kvstore.ScanOptions{})
		if err != nil {
			t.Fatalf("ScanVersions(%s): %v", table, err)
		}
		b.WriteString(dumpCells(table, cells))
	}
	return b.String()
}

// storeDump produces the identical format from a local store.
func storeDump(t *testing.T, s *kvstore.Store, tables ...string) string {
	t.Helper()
	var b bytes.Buffer
	for _, table := range tables {
		tbl, err := s.Table(table)
		if err != nil {
			continue
		}
		for _, c := range tbl.Scan(kvstore.ScanOptions{}) {
			for _, v := range tbl.GetVersions(c.Row, c.Column, 0) {
				fmt.Fprintf(&b, "%s %s/%s @%d = %x\n", table, c.Row, c.Column, v.Timestamp, v.Value)
			}
		}
	}
	return b.String()
}

// workload drives an identical op sequence against the cluster client and a
// reference single store: multi-version overwrites, deletes (including of
// missing cells — they must burn a clock tick in both worlds), and batches.
func workload(t *testing.T, c *Client, ref *kvstore.Store) {
	t.Helper()
	if err := c.CreateTable("alpha", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.EnsureTable("alpha", kvstore.TableOptions{MaxVersions: 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("beta", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.EnsureTable("beta", kvstore.TableOptions{}); err != nil {
		t.Fatal(err)
	}
	refA, _ := ref.Table("alpha")
	refB, _ := ref.Table("beta")

	for i := 0; i < 40; i++ {
		row := fmt.Sprintf("row-%02d", i%20)
		col := fmt.Sprintf("c%d", i%3)
		val := []byte(fmt.Sprintf("v%d", i))
		if err := c.Put("alpha", row, col, val); err != nil {
			t.Fatal(err)
		}
		if err := refA.Put(row, col, val); err != nil {
			t.Fatal(err)
		}
	}
	// Deletes: one real, one of a missing cell (tick parity).
	for _, k := range [][2]string{{"row-03", "c0"}, {"never", "c9"}} {
		if err := c.Delete("alpha", k[0], k[1]); err != nil {
			t.Fatal(err)
		}
		if err := refA.Delete(k[0], k[1]); err != nil {
			t.Fatal(err)
		}
	}
	// A batch spanning many rows (hence shards).
	b := kvstore.NewBatch()
	for i := 0; i < 10; i++ {
		b.PutFloat(fmt.Sprintf("m-%02d", i), "value", float64(i)*1.5)
	}
	b.Delete("m-04", "value")
	if err := c.Apply("beta", b.Ops()); err != nil {
		t.Fatal(err)
	}
	if err := refB.Apply(b); err != nil {
		t.Fatal(err)
	}
}

// --- ring / map ------------------------------------------------------------

func TestRingDeterministicAndCovering(t *testing.T) {
	r1, r2 := newRing(3, 0), newRing(3, 0)
	counts := make([]int, 3)
	for i := 0; i < 1000; i++ {
		row := fmt.Sprintf("row-%04d", i)
		s := r1.shardFor(row)
		if s != r2.shardFor(row) {
			t.Fatalf("row %q routed differently by identical rings", row)
		}
		if s < 0 || s >= 3 {
			t.Fatalf("row %q routed to shard %d", row, s)
		}
		counts[s]++
	}
	for s, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d owns no rows of 1000 (distribution: %v)", s, counts)
		}
	}
	// Single shard: everything routes to 0.
	one := newRing(1, 0)
	if one.shardFor("anything") != 0 {
		t.Fatal("single-shard ring routed off shard 0")
	}
}

func TestMapEncodePromoteStaleness(t *testing.T) {
	m := NewMap([]string{"a:1", "b:2"})
	if err := m.SetReplica(0, "a-rep:1"); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMap(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != m.Version || len(got.Shards) != 2 || got.Shards[0].Replica != "a-rep:1" {
		t.Fatalf("round-trip mismatch: %+v vs %+v", got, m)
	}
	v := m.Version
	if err := m.Promote(0); err != nil {
		t.Fatal(err)
	}
	if m.Shards[0].Primary != "a-rep:1" || m.Shards[0].Replica != "a:1" || m.Version != v+1 {
		t.Fatalf("promote result: %+v version %d", m.Shards[0], m.Version)
	}
	if err := m.Promote(1); err == nil {
		t.Fatal("promote of replica-less shard succeeded")
	}
	if err := m.Promote(9); err == nil {
		t.Fatal("promote of unknown shard succeeded")
	}
	if _, err := DecodeMap([]byte(`{"version":1}`)); err == nil {
		t.Fatal("shardless map decoded")
	}
}

// --- determinism: cluster state ≡ single store -----------------------------

func TestClusterDumpBitIdenticalToSingleStore(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("%d-shards", shards), func(t *testing.T) {
			tc := startCluster(t, shards, false, nil)
			c := tc.client(Config{})
			ref := kvstore.New()
			workload(t, c, ref)

			want := storeDump(t, ref, "alpha", "beta")
			got := clusterDump(t, c, "alpha", "beta")
			if want == "" {
				t.Fatal("empty reference dump; workload broken")
			}
			if got != want {
				t.Fatalf("cluster dump differs from single store:\nwant:\n%sgot:\n%s", want, got)
			}

			// Plain scans agree with the reference store too.
			refA, _ := ref.Table("alpha")
			wantCells := refA.Scan(kvstore.ScanOptions{RowPrefix: "row-0"})
			gotCells, err := c.Scan("alpha", kvstore.ScanOptions{RowPrefix: "row-0"})
			if err != nil {
				t.Fatal(err)
			}
			if len(gotCells) != len(wantCells) {
				t.Fatalf("scan lengths: got %d want %d", len(gotCells), len(wantCells))
			}
			for i := range gotCells {
				if gotCells[i].Row != wantCells[i].Row || gotCells[i].Column != wantCells[i].Column ||
					gotCells[i].Version.Timestamp != wantCells[i].Version.Timestamp ||
					!bytes.Equal(gotCells[i].Version.Value, wantCells[i].Version.Value) {
					t.Fatalf("scan cell %d: got %+v want %+v", i, gotCells[i], wantCells[i])
				}
			}

			// Gets route correctly and see latest values.
			v, found, err := c.Get("alpha", "row-07", "c1")
			if err != nil || !found {
				t.Fatalf("Get: %v found=%v", err, found)
			}
			wv, _ := refA.Get("row-07", "c1")
			if !bytes.Equal(v, wv) {
				t.Fatalf("Get = %q want %q", v, wv)
			}
			if _, found, err := c.Get("alpha", "row-03", "c0"); err != nil || found {
				t.Fatalf("deleted cell: found=%v err=%v", found, err)
			}
		})
	}
}

// --- replication / catch-up ------------------------------------------------

func TestFollowerMirrorsPrimary(t *testing.T) {
	tc := startCluster(t, 2, true, nil)
	c := tc.client(Config{})
	ref := kvstore.New()
	workload(t, c, ref)

	want := storeDump(t, ref, "alpha", "beta")
	var merged string
	for _, set := range [][]*Node{tc.primary, tc.follower} {
		var b bytes.Buffer
		for _, table := range []string{"alpha", "beta"} {
			cells := mergeNodeVersions(t, set, table)
			b.WriteString(dumpCells(table, cells))
		}
		merged = b.String()
		if merged != want {
			t.Fatalf("node-set dump differs from reference:\nwant:\n%sgot:\n%s", want, merged)
		}
	}
	// Log heads agree pairwise: follower logs are checksum-prefixes of
	// their primaries'.
	for s := range tc.primary {
		pc, pcrc := tc.primary[s].Log().Status()
		fc, fcrc := tc.follower[s].Log().Status()
		if pc != fc || pcrc != fcrc {
			t.Fatalf("shard %d log heads differ: primary (%d,%x) follower (%d,%x)", s, pc, pcrc, fc, fcrc)
		}
	}
}

// mergeNodeVersions merges the version-expanded contents of a node set's
// stores directly (no client), in key order.
func mergeNodeVersions(t *testing.T, nodes []*Node, table string) []kvstore.Cell {
	t.Helper()
	var all []kvstore.Cell
	for _, n := range nodes {
		tbl, err := n.Store().Table(table)
		if err != nil {
			continue
		}
		for _, c := range tbl.Scan(kvstore.ScanOptions{}) {
			for _, v := range tbl.GetVersions(c.Row, c.Column, 0) {
				all = append(all, kvstore.Cell{Row: c.Row, Column: c.Column, Version: v})
			}
		}
	}
	// Insertion sort by (row, col) keeping per-cell version runs stable.
	sorted := make([]kvstore.Cell, 0, len(all))
	for _, c := range all {
		i := len(sorted)
		for i > 0 && keyLess(c, sorted[i-1]) {
			i--
		}
		sorted = append(sorted, kvstore.Cell{})
		copy(sorted[i+1:], sorted[i:])
		sorted[i] = c
	}
	return sorted
}

func TestCatchUpFromCursor(t *testing.T) {
	tc := startCluster(t, 1, true, nil)
	c := tc.client(Config{})
	if err := c.CreateTable("t", 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := c.Put("t", fmt.Sprintf("r%02d", i), "c", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Follower goes away; primary keeps writing.
	tc.primary[0].DetachFollower()
	for i := 10; i < 25; i++ {
		if err := c.Put("t", fmt.Sprintf("r%02d", i), "c", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	fcur, _ := tc.follower[0].Log().Status()
	pcur, _ := tc.primary[0].Log().Status()
	if fcur >= pcur {
		t.Fatalf("follower cursor %d not behind primary %d", fcur, pcur)
	}
	// Re-attach: catch-up streams Since(cursor), then live shipping resumes.
	if err := tc.primary[0].AttachFollower(tc.follower[0].Addr()); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("t", "r99", "c", []byte("live")); err != nil {
		t.Fatal(err)
	}
	pd := storeDump(t, tc.primary[0].Store(), "t")
	fd := storeDump(t, tc.follower[0].Store(), "t")
	if pd != fd {
		t.Fatalf("follower diverged after catch-up:\nprimary:\n%sfollower:\n%s", pd, fd)
	}
	fc, fcrc := tc.follower[0].Log().Status()
	pc, pcrc := tc.primary[0].Log().Status()
	if fc != pc || fcrc != pcrc {
		t.Fatalf("log heads differ after catch-up: follower (%d,%x) primary (%d,%x)", fc, fcrc, pc, pcrc)
	}
}

func TestDivergedFollowerRequiresReset(t *testing.T) {
	tc := startCluster(t, 1, false, nil)
	c := tc.client(Config{})
	if err := c.CreateTable("t", 3); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("t", "r1", "c", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// A would-be follower with its own history (a demoted primary's un-acked
	// tail): direct writes it never shipped anywhere.
	stray, err := NewNode(NodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = stray.Close() })
	st, err := stray.Store().EnsureTable("t", kvstore.TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("ghost", "c", []byte("unacked")); err != nil {
		t.Fatal(err)
	}
	if err := tc.primary[0].AttachFollower(stray.Addr()); !errors.Is(err, ErrDivergedFollower) {
		t.Fatalf("attach of diverged follower = %v, want ErrDivergedFollower", err)
	}
	// Reset wipes it back to a clean slate; the attach then resyncs from 0.
	stray.Reset()
	if err := tc.primary[0].AttachFollower(stray.Addr()); err != nil {
		t.Fatal(err)
	}
	if pd, sd := storeDump(t, tc.primary[0].Store(), "t"), storeDump(t, stray.Store(), "t"); pd != sd {
		t.Fatalf("resynced follower differs:\nprimary:\n%sfollower:\n%s", pd, sd)
	}
}

// --- failover --------------------------------------------------------------

func TestFailoverPromotesReplica(t *testing.T) {
	inj := fault.New(fault.Policy{})
	tc := startCluster(t, 2, true, inj)
	var failed []string
	c := tc.client(Config{
		ProbeRetries: 1,
		OnFailover: func(shard int, from, to string) {
			failed = append(failed, fmt.Sprintf("%d:%s->%s", shard, from, to))
		},
	})
	ref := kvstore.New()
	workload(t, c, ref)

	// Kill shard 0's primary: all conns to it drop, dials are refused.
	victim := tc.primary[0].Addr()
	inj.Partition(victim)

	// Every op keeps working; ops routed to shard 0 go through failover.
	for i := 0; i < 20; i++ {
		row := fmt.Sprintf("row-%02d", i%20)
		val := []byte(fmt.Sprintf("after-kill-%d", i))
		if err := c.Put("alpha", row, "c9", val); err != nil {
			t.Fatalf("Put after kill: %v", err)
		}
		refA, _ := ref.Table("alpha")
		if err := refA.Put(row, "c9", val); err != nil {
			t.Fatal(err)
		}
	}
	if len(failed) != 1 {
		t.Fatalf("failovers = %v, want exactly one", failed)
	}
	m := c.Map()
	if m.Shards[0].Primary != tc.follower[0].Addr() {
		t.Fatalf("map primary = %s, want promoted follower %s", m.Shards[0].Primary, tc.follower[0].Addr())
	}
	if m.Version != tc.m.Version+1 {
		t.Fatalf("map version = %d, want %d", m.Version, tc.m.Version+1)
	}

	// The merged dump still matches the reference bit-for-bit: the replica
	// held every acked write at promotion time.
	want := storeDump(t, ref, "alpha", "beta")
	got := clusterDump(t, c, "alpha", "beta")
	if got != want {
		t.Fatalf("post-failover dump differs:\nwant:\n%sgot:\n%s", want, got)
	}

	// The surviving other-shard primary learned the new map.
	cl, err := kvnet.Dial(tc.primary[1].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	mb, err := cl.MapGet()
	if err != nil {
		t.Fatal(err)
	}
	pushed, err := DecodeMap(mb)
	if err != nil {
		t.Fatal(err)
	}
	if pushed.Version != m.Version {
		t.Fatalf("pushed map version %d, want %d", pushed.Version, m.Version)
	}
}

func TestHealthLoopPromotesProactively(t *testing.T) {
	inj := fault.New(fault.Policy{})
	tc := startCluster(t, 1, true, inj)
	promoted := make(chan string, 1)
	c := tc.client(Config{
		ProbeRetries: 1,
		OnFailover:   func(_ int, _, to string) { promoted <- to },
	})
	if err := c.CreateTable("t", 3); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("t", "r", "c", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if !c.StartHealthLoop(5 * time.Millisecond) {
		t.Fatal("StartHealthLoop returned false")
	}
	if c.StartHealthLoop(5 * time.Millisecond) {
		t.Fatal("second StartHealthLoop returned true")
	}
	inj.Partition(tc.primary[0].Addr())
	select {
	case to := <-promoted:
		if to != tc.follower[0].Addr() {
			t.Fatalf("promoted to %s, want %s", to, tc.follower[0].Addr())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("health loop never promoted the replica")
	}
	// Reads work without any op ever tripping over the dead primary.
	if v, found, err := c.Get("t", "r", "c"); err != nil || !found || string(v) != "x" {
		t.Fatalf("Get after proactive failover = %q %v %v", v, found, err)
	}
	if err := c.Close(); err != nil { // stops the loop; must not hang or leak
		t.Fatal(err)
	}
}

// TestRejoinAfterFailover runs the full node lifecycle: primary killed,
// replica promoted, dead node healed, Reset, re-attached as the promoted
// node's follower, catch-up to an identical log head. Reset must also drop
// the dead primary's own stale follower link (it still points at the node
// that was promoted over it); keeping it would forward the catch-up stream
// back to its source and deadlock the attach.
func TestRejoinAfterFailover(t *testing.T) {
	inj := fault.New(fault.Policy{})
	tc := startCluster(t, 1, true, inj)
	c := tc.client(Config{ProbeRetries: 1})
	if err := c.CreateTable("t", 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := c.Put("t", fmt.Sprintf("r%02d", i), "c", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	inj.Partition(tc.primary[0].Addr())
	for i := 10; i < 20; i++ {
		if err := c.Put("t", fmt.Sprintf("r%02d", i), "c", []byte{byte(i)}); err != nil {
			t.Fatalf("put %d across failover: %v", i, err)
		}
	}
	promoted := tc.follower[0]
	if c.Map().Shards[0].Primary != promoted.Addr() {
		t.Fatal("replica was not promoted")
	}

	// Rejoin: the dead node heals, resets (dropping its stale follower link
	// to the promoted node) and catches up as the new follower.
	inj.Heal(tc.primary[0].Addr())
	rejoined := tc.primary[0]
	rejoined.Reset()
	if got := rejoined.FollowerAddr(); got != "" {
		t.Fatalf("Reset left follower link to %s attached", got)
	}
	done := make(chan error, 1)
	go func() { done <- promoted.AttachFollower(rejoined.Addr()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("re-attach after reset: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("AttachFollower deadlocked (replication cycle)")
	}
	// Live replication works on the new topology too.
	if err := c.Put("t", "r99", "c", []byte("post-rejoin")); err != nil {
		t.Fatal(err)
	}
	pd := storeDump(t, promoted.Store(), "t")
	rd := storeDump(t, rejoined.Store(), "t")
	if pd != rd {
		t.Fatalf("rejoined follower differs:\npromoted:\n%srejoined:\n%s", pd, rd)
	}
	pc, pcrc := promoted.Log().Status()
	rc, rcrc := rejoined.Log().Status()
	if pc != rc || pcrc != rcrc {
		t.Fatalf("log heads differ after rejoin: promoted (%d,%x) rejoined (%d,%x)", pc, pcrc, rc, rcrc)
	}
}

// --- scatter-gather under failover (satellite) -----------------------------

// TestScanMergeMidScanFailover kills a shard's primary between page fetches
// of an in-flight scatter-gather scan and asserts the merged result is
// byte-identical to the pre-kill truth: resumed from the last merged key,
// no duplicates, no gaps.
func TestScanMergeMidScanFailover(t *testing.T) {
	inj := fault.New(fault.Policy{})
	tc := startCluster(t, 3, true, inj)
	c := tc.client(Config{ProbeRetries: 1})
	if err := c.CreateTable("t", 3); err != nil {
		t.Fatal(err)
	}
	// Enough rows that every shard needs several pages; some multi-cell rows.
	ref := kvstore.New()
	rt, _ := ref.EnsureTable("t", kvstore.TableOptions{MaxVersions: 3})
	for i := 0; i < 2000; i++ {
		row := fmt.Sprintf("row-%04d", i)
		col := fmt.Sprintf("c%d", i%2)
		val := []byte(fmt.Sprintf("v%d", i))
		if err := c.Put("t", row, col, val); err != nil {
			t.Fatal(err)
		}
		if err := rt.Put(row, col, val); err != nil {
			t.Fatal(err)
		}
	}
	want := rt.Scan(kvstore.ScanOptions{})

	// Kill shard 1's primary right before its second page fetch.
	killed := false
	c.onScanPage = func(shard, page int) {
		if shard == 1 && page == 1 && !killed {
			killed = true
			inj.Partition(tc.primary[1].Addr())
		}
	}
	got, err := c.Scan("t", kvstore.ScanOptions{})
	if err != nil {
		t.Fatalf("scan across mid-scan failover: %v", err)
	}
	if !killed {
		t.Fatal("kill hook never fired; shard 1 needed no second page — grow the dataset")
	}
	if len(got) != len(want) {
		t.Fatalf("merged scan has %d cells, want %d (duplicates or gaps)", len(got), len(want))
	}
	for i := range got {
		if got[i].Row != want[i].Row || got[i].Column != want[i].Column ||
			got[i].Version.Timestamp != want[i].Version.Timestamp ||
			!bytes.Equal(got[i].Version.Value, want[i].Version.Value) {
			t.Fatalf("cell %d: got (%s,%s,@%d,%q) want (%s,%s,@%d,%q)",
				i, got[i].Row, got[i].Column, got[i].Version.Timestamp, got[i].Version.Value,
				want[i].Row, want[i].Column, want[i].Version.Timestamp, want[i].Version.Value)
		}
	}
	if c.Map().Shards[1].Primary != tc.follower[1].Addr() {
		t.Fatal("shard 1 was not failed over during the scan")
	}
}

// --- mirror mode -----------------------------------------------------------

func TestMirrorShipsExistingAndLiveState(t *testing.T) {
	tc := startCluster(t, 3, false, nil)
	c := tc.client(Config{})

	local := kvstore.New()
	lt, err := local.CreateTable("pre", kvstore.TableOptions{MaxVersions: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-existing state, including multi-version cells, before Mirror.
	for i := 0; i < 30; i++ {
		if err := lt.Put(fmt.Sprintf("r%02d", i%10), "c", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Mirror(local); err != nil {
		t.Fatal(err)
	}
	// Live writes after attach, on old and brand-new tables.
	for i := 0; i < 10; i++ {
		if err := lt.Put(fmt.Sprintf("r%02d", i), "c2", []byte("live")); err != nil {
			t.Fatal(err)
		}
	}
	nt, err := local.CreateTable("post", kvstore.TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := nt.PutFloat("k", "v", 4.25); err != nil {
		t.Fatal(err)
	}
	if err := lt.Delete("r03", "c"); err != nil {
		t.Fatal(err)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("mirror ship error: %v", err)
	}
	want := storeDump(t, local, "pre", "post")
	got := clusterDump(t, c, "pre", "post")
	if got != want {
		t.Fatalf("mirrored cluster differs from local store:\nwant:\n%sgot:\n%s", want, got)
	}
}

// --- adapter ---------------------------------------------------------------

func TestStoreAdapter(t *testing.T) {
	tc := startCluster(t, 2, false, nil)
	c := tc.client(Config{})
	s := c.AsStore()
	tbl, err := s.EnsureTable("t", kvstore.TableOptions{MaxVersions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.PutFloat("r", "f", 1.5); err != nil {
		t.Fatal(err)
	}
	if v, found, err := tbl.GetFloat("r", "f"); err != nil || !found || v != 1.5 {
		t.Fatalf("GetFloat = %v %v %v", v, found, err)
	}
	if err := tbl.Apply(kvstore.NewBatch().Put("r2", "c", []byte("b")).Delete("r", "f")); err != nil {
		t.Fatal(err)
	}
	if _, found, err := tbl.Get("r", "f"); err != nil || found {
		t.Fatalf("deleted cell: found=%v err=%v", found, err)
	}
	cells, err := tbl.Scan(kvstore.ScanOptions{})
	if err != nil || len(cells) != 1 || cells[0].Row != "r2" {
		t.Fatalf("Scan = %+v, %v", cells, err)
	}
	if _, err := s.Table(""); err == nil {
		t.Fatal("empty table name accepted")
	}
}
