package cluster

// The partition map is the cluster's single piece of shared configuration:
// which shards exist, which address is each shard's primary and which its
// replica, and the ring geometry rows are routed by. It is static in shape —
// shard count and vnodes never change after creation — and versioned in
// content: every promotion bumps Version, so a node or client holding a
// stale map can tell newer from older at a glance. The encoding is JSON,
// carried opaquely by the wire layer's OpMapGet / OpMapSet frames.

import (
	"encoding/json"
	"fmt"
)

// Shard names one shard's member addresses.
type Shard struct {
	// Primary serves reads and replicated writes for the shard's key range.
	Primary string `json:"primary"`
	// Replica follows the primary's replication stream; empty means the
	// shard runs unreplicated. On failover the replica becomes primary and
	// this field keeps the dead node's address until a rejoin replaces it.
	Replica string `json:"replica,omitempty"`
	// Epoch is the shard's fencing generation: monotone, starting at 1,
	// bumped by every Promote. Clients stamp replication frames with it and
	// nodes reject stamps older than the highest epoch they have seen, so a
	// demoted primary alive behind a partition can never ack a write the
	// promoted timeline will not contain (DESIGN.md §15).
	Epoch uint64 `json:"epoch,omitempty"`
}

// Map is the versioned partition table.
type Map struct {
	// Version orders map revisions; promotions and replica changes bump it.
	Version int `json:"version"`
	// Vnodes is the ring points per shard (0 = DefaultVnodes). All
	// participants must agree on it or rows route differently.
	Vnodes int `json:"vnodes,omitempty"`
	// Shards lists the shard membership, indexed by ring shard number.
	Shards []Shard `json:"shards"`
}

// NewMap builds a version-1 map over the given primary addresses, with no
// replicas and default ring geometry.
func NewMap(primaries []string) *Map {
	m := &Map{Version: 1, Shards: make([]Shard, len(primaries))}
	for i, addr := range primaries {
		m.Shards[i].Primary = addr
		m.Shards[i].Epoch = 1
	}
	return m
}

// Encode serializes the map for the wire.
func (m *Map) Encode() []byte {
	b, err := json.Marshal(m)
	if err != nil {
		// A Map of strings and ints cannot fail to marshal.
		panic("cluster: map encode: " + err.Error())
	}
	return b
}

// DecodeMap parses an encoded map, rejecting empty and shardless payloads.
func DecodeMap(b []byte) (*Map, error) {
	var m Map
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("cluster: decode partition map: %w", err)
	}
	if len(m.Shards) == 0 {
		return nil, fmt.Errorf("cluster: partition map has no shards")
	}
	return &m, nil
}

// Clone returns a deep copy.
func (m *Map) Clone() *Map {
	out := *m
	out.Shards = append([]Shard(nil), m.Shards...)
	return &out
}

// Promote fails shard over to its replica: the replica becomes primary, the
// dead primary's address is retained in the replica slot (a rejoin resyncs
// or replaces it), the shard's fencing epoch advances, and the map version
// advances.
func (m *Map) Promote(shard int) error {
	if shard < 0 || shard >= len(m.Shards) {
		return fmt.Errorf("cluster: promote: no shard %d", shard)
	}
	s := &m.Shards[shard]
	if s.Replica == "" {
		return fmt.Errorf("cluster: promote: shard %d has no replica", shard)
	}
	s.Primary, s.Replica = s.Replica, s.Primary
	s.Epoch++
	m.Version++
	return nil
}

// SetReplica points shard's replica slot at addr (a fresh or resynced
// follower) and advances the map version.
func (m *Map) SetReplica(shard int, addr string) error {
	if shard < 0 || shard >= len(m.Shards) {
		return fmt.Errorf("cluster: set replica: no shard %d", shard)
	}
	m.Shards[shard].Replica = addr
	m.Version++
	return nil
}

// ring materializes the map's routing ring.
func (m *Map) ring() *ring {
	return newRing(len(m.Shards), m.Vnodes)
}
