package cluster

// Health checking. Two modes share one prober:
//
//   - Reactive (always on): withShard consults the prober when an operation
//     fails at the transport level — the suspect primary gets a burst of
//     pings with seeded exponential backoff, and only if every ping fails is
//     the replica promoted. Transient blips heal; dead shards fail over in
//     one operation's latency.
//   - Proactive (StartHealthLoop): a background goroutine pings every
//     primary on an interval and promotes dead ones before any operation
//     trips over them. The loop has an explicit shutdown path (Close / stop)
//     so it never leaks.
//
// Probing is deterministic given the seed and the failure sequence: the
// backoff jitter comes from a private seeded source, and probes reuse the
// client config's Dial hook, so a fault-injected partition that kills data
// traffic kills probes identically.

import (
	mrand "math/rand"
	"sync"
	"time"

	"smartflux/internal/kvstore/kvnet"
)

// Probe defaults; Config overrides.
const (
	defaultProbeRetries      = 3
	defaultProbeBackoff      = 10 * time.Millisecond
	probeDialTimeout         = 500 * time.Millisecond
	defaultFailoverThreshold = 2
)

// prober decides whether an address is dead.
type prober struct {
	cfg     kvnet.ClientConfig // stripped-down: one dial, one ping, no retries
	retries int
	backoff time.Duration

	mu  sync.Mutex
	rng *mrand.Rand
}

// newProber builds the prober from a client config.
func newProber(cfg Config) *prober {
	pc := kvnet.ClientConfig{
		Dial:         cfg.Client.Dial,
		DialTimeout:  cfg.Client.DialTimeout,
		ReadTimeout:  cfg.Client.ReadTimeout,
		WriteTimeout: cfg.Client.WriteTimeout,
	}
	if pc.DialTimeout <= 0 {
		pc.DialTimeout = probeDialTimeout
	}
	if pc.ReadTimeout <= 0 {
		pc.ReadTimeout = probeDialTimeout
	}
	retries := cfg.ProbeRetries
	if retries <= 0 {
		retries = defaultProbeRetries
	}
	backoff := cfg.ProbeBackoff
	if backoff <= 0 {
		backoff = defaultProbeBackoff
	}
	return &prober{
		cfg:     pc,
		retries: retries,
		backoff: backoff,
		rng:     mrand.New(mrand.NewSource(cfg.Seed)),
	}
}

// ping dials addr fresh and round-trips one OpPing frame.
func (p *prober) ping(addr string) error {
	cl, err := kvnet.DialConfig(addr, p.cfg)
	if err != nil {
		return err
	}
	defer func() { _ = cl.Close() }()
	return cl.Ping()
}

// dead reports whether addr failed every probe: 1 + retries pings, with
// seeded exponential backoff between attempts. Any successful ping clears
// the suspect immediately.
func (p *prober) dead(addr string) bool {
	for attempt := 0; attempt <= p.retries; attempt++ {
		if attempt > 0 {
			time.Sleep(p.delay(attempt - 1))
		}
		if p.ping(addr) == nil {
			return false
		}
	}
	return true
}

// delay computes the seeded backoff before retry attempt (0-based): base
// doubling per attempt plus jitter of up to half the delay.
func (p *prober) delay(attempt int) time.Duration {
	if attempt > 6 {
		attempt = 6
	}
	d := p.backoff << uint(attempt)
	p.mu.Lock()
	j := time.Duration(p.rng.Int63n(int64(d)/2 + 1))
	p.mu.Unlock()
	return d + j
}

// healthLoop is the background prober: one goroutine, stopped by closing
// closeCh and waiting on wg.
type healthLoop struct {
	closeCh chan struct{}
	wg      sync.WaitGroup
}

func (h *healthLoop) stop() {
	close(h.closeCh)
	h.wg.Wait()
}

// StartHealthLoop begins proactive probing: every interval, each shard's
// primary is pinged and dead ones are failed over without waiting for an
// operation to trip. Returns false if a loop is already running or the
// client is closed. Close stops the loop.
func (c *Client) StartHealthLoop(interval time.Duration) bool {
	c.mu.Lock()
	if c.closed || c.health != nil {
		c.mu.Unlock()
		return false
	}
	h := &healthLoop{closeCh: make(chan struct{})}
	c.health = h
	c.mu.Unlock()

	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-h.closeCh:
				return
			case <-t.C:
				c.probeAll()
			}
		}
	}()
	return true
}

// probeAll sweeps every shard once. A failed ping only increments the
// shard's consecutive-failure count; failover runs when the streak reaches
// Config.FailoverThreshold (default 2) — one slow or dropped sweep is a
// blip, and promoting on it would flap the cluster through an epoch bump,
// a breaker reset and a map push for nothing. Any successful ping clears
// the streak.
func (c *Client) probeAll() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	threshold := c.cfg.FailoverThreshold
	if threshold <= 0 {
		threshold = defaultFailoverThreshold
	}
	type target struct {
		shard int
		addr  string
		ver   int
	}
	targets := make([]target, len(c.m.Shards))
	for i, s := range c.m.Shards {
		targets[i] = target{shard: i, addr: s.Primary, ver: c.m.Version}
	}
	c.mu.Unlock()
	for _, t := range targets {
		if c.probe.ping(t.addr) == nil {
			c.mu.Lock()
			c.probeFails[t.shard] = 0
			c.mu.Unlock()
			continue
		}
		c.mu.Lock()
		c.probeFails[t.shard]++
		suspect := c.probeFails[t.shard] >= threshold
		c.mu.Unlock()
		if suspect {
			// failover re-probes with the full retry budget and re-checks
			// the map version, so a concurrent promotion is respected; the
			// streak resets inside promote on success.
			c.failover(t.shard, t.addr, t.ver)
		}
	}
}
