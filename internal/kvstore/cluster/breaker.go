package cluster

// Per-shard circuit breakers. A breaker tracks one shard's transport health
// from the client's seat: consecutive transport-level failures trip it open,
// an open breaker fast-fails operations without touching the network, and
// after a cooldown — counted in operations, not wall time, so runs replay
// deterministically — a single half-open trial decides between closing and
// re-opening with a doubled cooldown. Application-level responses, including
// fencing rejections, count as successes: the server answered, so the
// transport is healthy; the breaker guards reachability, not correctness.
//
// Determinism: cooldowns carry jitter drawn from a per-shard rand source
// seeded from Config.Seed, so two clients with the same seed and the same
// failure sequence trip, cool and close identically — the property the
// partition chaos suite asserts by comparing counters across reruns.

import (
	"fmt"
	mrand "math/rand"

	"smartflux/internal/obs"
)

// Breaker defaults; Config overrides.
const (
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = 16
	maxBreakerBackoff       = 8
)

// Breaker states, exported to the smartflux_breaker_state gauge.
const (
	breakerClosed   = 0
	breakerOpen     = 1
	breakerHalfOpen = 2
)

// breaker is one shard's circuit breaker. Methods are not self-locking:
// the owning Client calls them under its own mutex, which also keeps the
// rand draws ordered.
type breaker struct {
	threshold int         // consecutive transport failures that trip it
	cooldown  int         // base open-state cooldown, in operations
	rng       *mrand.Rand // per-shard seeded jitter source

	state   int // breakerClosed / breakerOpen / breakerHalfOpen
	fails   int // consecutive transport failures while closed
	wait    int // operations remaining before open → half-open
	backoff int // cooldown multiplier, doubling per failed trial

	stateGauge *obs.Gauge // nil-safe when uninstrumented
	opens      *obs.Counter
	fastFails  *obs.Counter
}

// newBreaker builds shard's breaker from the client config. The jitter
// source derives from the client seed and the shard index (golden-ratio
// scramble) so shards jitter independently but reproducibly.
func newBreaker(cfg Config, shard int) *breaker {
	threshold := cfg.BreakerThreshold
	if threshold <= 0 {
		threshold = defaultBreakerThreshold
	}
	cooldown := cfg.BreakerCooldown
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	b := &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		rng:       mrand.New(mrand.NewSource(cfg.Seed ^ int64(uint64(shard+1)*0x9E3779B97F4A7C15))),
		backoff:   1,
	}
	if cfg.Obs != nil {
		b.stateGauge = cfg.Obs.Gauge(fmt.Sprintf("smartflux_breaker_state{shard=%q}", fmt.Sprint(shard)))
		b.opens = cfg.Obs.Counter(fmt.Sprintf("smartflux_breaker_opens_total{shard=%q}", fmt.Sprint(shard)))
		b.fastFails = cfg.Obs.Counter(fmt.Sprintf("smartflux_breaker_fastfail_total{shard=%q}", fmt.Sprint(shard)))
	}
	return b
}

// setState moves the breaker and mirrors the state to the gauge.
func (b *breaker) setState(s int) {
	b.state = s
	if b.stateGauge != nil {
		b.stateGauge.Set(float64(s))
	}
}

// allow reports whether the next operation may touch the network. While
// open it burns one cooldown tick per refused operation; when the cooldown
// is spent the breaker half-opens and the current operation becomes the
// trial.
func (b *breaker) allow() bool {
	switch b.state {
	case breakerOpen:
		b.wait--
		if b.wait > 0 {
			b.fastFails.Inc() // nil-safe no-op when uninstrumented
			return false
		}
		b.setState(breakerHalfOpen)
		return true
	case breakerHalfOpen:
		// One trial at a time; concurrent operations fast-fail until the
		// in-flight trial settles the state.
		b.fastFails.Inc()
		return false
	default:
		return true
	}
}

// onSuccess records a server response (any application-level outcome):
// the transport works, so the breaker closes and the backoff resets.
func (b *breaker) onSuccess() {
	b.fails = 0
	b.backoff = 1
	if b.state != breakerClosed {
		b.setState(breakerClosed)
	}
}

// onFailure records a transport-level failure and reports whether this one
// tripped the breaker open. A failed half-open trial re-opens with a doubled
// (capped) cooldown.
func (b *breaker) onFailure() (tripped bool) {
	switch b.state {
	case breakerClosed:
		b.fails++
		if b.fails < b.threshold {
			return false
		}
	case breakerHalfOpen:
		if b.backoff < maxBreakerBackoff {
			b.backoff *= 2
		}
	default:
		return false
	}
	b.open()
	return true
}

// open trips the breaker: cooldown = backoff × base, plus seeded jitter of
// up to a quarter of the base so same-seed runs stagger identically.
func (b *breaker) open() {
	b.fails = 0
	b.wait = b.backoff*b.cooldown + b.rng.Intn(b.cooldown/4+1)
	b.setState(breakerOpen)
	b.opens.Inc() // nil-safe no-op when uninstrumented
}

// reset returns the breaker to closed with a fresh backoff — a promotion
// changed the primary this breaker was guarding, so its history is moot.
func (b *breaker) reset() {
	b.fails = 0
	b.backoff = 1
	b.wait = 0
	if b.state != breakerClosed {
		b.setState(breakerClosed)
	}
}
