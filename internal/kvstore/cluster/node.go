package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"smartflux/internal/durable"
	"smartflux/internal/kvstore"
	"smartflux/internal/kvstore/kvnet"
	"smartflux/internal/obs"
)

// replSegment bounds how many records one catch-up Repl frame carries, so a
// long history streams as many small frames instead of one giant one.
const replSegment = 256

// ErrDivergedFollower reports a follower whose replication log does not
// checksum-match a prefix of the primary's: its history contains records the
// primary never shipped (e.g. a demoted primary's un-acked tail), so a
// cursor-based catch-up would silently fork state. The follower must Reset
// and resync from zero.
var ErrDivergedFollower = errors.New("cluster: follower history diverged; reset and resync required")

// NodeConfig configures one cluster node.
type NodeConfig struct {
	// Addr is the TCP listen address; empty means "127.0.0.1:0".
	Addr string
	// Listener, when non-nil, serves on this pre-bound listener instead of
	// Addr — the hook for fault-injecting wrappers.
	Listener net.Listener
	// Follower configures the replication-link client this node dials when
	// AttachFollower is called (retry budget, fault dialer, ...).
	Follower kvnet.ClientConfig
	// Label tags this node's obs counters (smartflux_cluster_*_total
	// {node=Label}); empty leaves them unlabeled. Obs nil disables them.
	Label string
	Obs   *obs.Observer
}

// Node is one cluster member: a kvstore served over kvnet, a replication log
// of every record it has originated or applied, and (when this node acts as
// a primary) a link shipping that log to a follower. A node has no fixed
// role — the partition map decides who is primary; a follower becomes one
// the moment clients start writing to it.
type Node struct {
	cfg   NodeConfig
	store *kvstore.Store
	srv   *kvnet.Server
	log   *durable.ReplLog
	addr  string

	// applying counts in-flight replication applications. While positive,
	// table creates observed on the store came from the replication stream
	// itself and must not be re-logged (the record is already in the log).
	applying atomic.Int32

	// epoch is the highest fencing epoch this node has observed — from a
	// stamped replication frame, a partition-map push, or its own shard
	// entry. fenced marks the node demoted: it learned of a higher epoch
	// (or could not reach its follower mid-ship) and refuses every write
	// until Reset wipes it for a rejoin (DESIGN.md §15).
	epoch  atomic.Uint64
	fenced atomic.Bool

	// shipMu serializes append-and-ship so the follower receives records in
	// exactly this node's log order — the invariant the cursor/checksum
	// catch-up handshake rests on. AttachFollower holds it while streaming
	// history, briefly pausing writes instead of losing records appended
	// between the stream snapshot and the attach.
	shipMu       sync.Mutex
	follower     *kvnet.Client
	followerAddr string

	mapMu    sync.Mutex
	mapBytes []byte

	replApplied  *obs.Counter // nil-safe when uninstrumented
	replShipped  *obs.Counter
	shipErrs     *obs.Counter
	fencedWrites *obs.Counter
	demotions    *obs.Counter
}

// NewNode creates a node and starts its server.
func NewNode(cfg NodeConfig) (*Node, error) {
	n := &Node{
		cfg:   cfg,
		store: kvstore.New(),
		log:   durable.NewReplLog(),
	}
	if cfg.Obs != nil {
		label := ""
		if cfg.Label != "" {
			label = fmt.Sprintf("{node=%q}", cfg.Label)
		}
		n.replApplied = cfg.Obs.Counter("smartflux_cluster_repl_applied_total" + label)
		n.replShipped = cfg.Obs.Counter("smartflux_cluster_repl_shipped_total" + label)
		n.shipErrs = cfg.Obs.Counter("smartflux_cluster_ship_errors_total" + label)
		n.fencedWrites = cfg.Obs.Counter("smartflux_cluster_fenced_writes_total" + label)
		n.demotions = cfg.Obs.Counter("smartflux_cluster_self_demotions_total" + label)
	}
	n.store.OnTableCreate(n.onTableCreate)
	n.srv = kvnet.NewServer(n.store)
	n.srv.SetReplHandler(n.applyRepl)
	n.srv.SetWriteGate(n.writeGate)
	n.srv.SetStatusHandler(n.status)
	n.srv.SetMapHandlers(n.mapGet, n.mapSet)
	if cfg.Obs != nil {
		n.srv.Instrument(cfg.Obs)
	}
	var (
		addr string
		err  error
	)
	if cfg.Listener != nil {
		addr, err = n.srv.ServeListener(cfg.Listener)
	} else {
		listen := cfg.Addr
		if listen == "" {
			listen = "127.0.0.1:0"
		}
		addr, err = n.srv.Listen(listen)
	}
	if err != nil {
		return nil, err
	}
	n.addr = addr
	return n, nil
}

// Addr returns the node's bound serving address.
func (n *Node) Addr() string { return n.addr }

// Store exposes the node's store for verification (dumps, direct reads).
func (n *Node) Store() *kvstore.Store { return n.store }

// Log exposes the node's replication log.
func (n *Node) Log() *durable.ReplLog { return n.log }

// Epoch returns the highest fencing epoch the node has observed.
func (n *Node) Epoch() uint64 { return n.epoch.Load() }

// Fenced reports whether the node has self-demoted to read-only mode.
func (n *Node) Fenced() bool { return n.fenced.Load() }

// writeGate is consulted by the server before every mutating op and every
// replication frame: a fenced node serves reads but refuses all writes, so
// a demoted primary alive behind a healed partition can never ack state the
// promoted timeline will not contain.
func (n *Node) writeGate() error {
	if n.fenced.Load() {
		n.fencedWrites.Inc() // nil-safe no-op when uninstrumented
		return fmt.Errorf("%w: node %s demoted at epoch %d", kvnet.ErrFenced, n.addr, n.epoch.Load())
	}
	return nil
}

// adoptEpoch raises the node's observed epoch to e; lower values are ignored.
func (n *Node) adoptEpoch(e uint64) {
	for {
		cur := n.epoch.Load()
		if e <= cur || n.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// fence demotes the node: it severs the outgoing follower link (a demoted
// primary usually still points at the very node promoted over it) and flips
// the fenced flag. Idempotent; only the first demotion counts.
func (n *Node) fence() {
	n.shipMu.Lock()
	defer n.shipMu.Unlock()
	if n.follower != nil {
		_ = n.follower.Close()
		n.follower = nil
		n.followerAddr = ""
	}
	n.fenceLocked()
}

// fenceLocked flips the fenced flag; callers hold shipMu (or otherwise
// guarantee the follower link is already severed).
func (n *Node) fenceLocked() {
	if !n.fenced.Swap(true) {
		n.demotions.Inc() // nil-safe no-op when uninstrumented
	}
}

// onTableCreate runs for every table created on the store, from any path.
// It always subscribes the mutation observer (a promoted follower's direct
// writes must be logged and shipped too), but logs a create record only for
// local creates — replicated creates are already in the stream being
// applied, and re-logging them would fork this log from the primary's.
func (n *Node) onTableCreate(t *kvstore.Table) {
	local := n.applying.Load() == 0
	t.Subscribe(kvstore.ObserverFunc(n.onMutation))
	if local {
		// Store observers cannot veto the create; the fencing consequence
		// of a failed ship (the node demotes) is carried by the flag.
		_ = n.appendAndShip([][]byte{durable.EncodeCreateRecord(t.Name(), t.MaxVersions())})
	}
}

// onMutation logs and ships every live mutation (direct kvnet Put/Delete/
// Apply or in-process writes). Replication applications never reach here —
// the replay operations do not notify observers — so there is no loop.
// Observers cannot fail the mutation; a ship failure still fences the node
// so no later write is acked on the dead timeline.
func (n *Node) onMutation(m kvstore.Mutation) {
	_ = n.appendAndShip([][]byte{durable.EncodeMutationRecord(m)})
}

// appendAndShip appends records to the log and synchronously forwards them
// to the attached follower, stamped with this node's epoch. Shipping before
// the originating operation returns means every write acked by this node has
// reached its follower — a promotion can lose only writes that were never
// acknowledged, and those retry idempotently. A ship failure severs the link
// and self-demotes: a primary that cannot reach its follower may already be
// the partitioned minority, and acking writes the promoted timeline will
// never contain is exactly the split-brain fencing exists to prevent. The
// returned error (wrapping kvnet.ErrFenced) fails the triggering operation,
// so the write is not acked.
func (n *Node) appendAndShip(recs [][]byte) error {
	n.shipMu.Lock()
	defer n.shipMu.Unlock()
	for _, rec := range recs {
		n.log.Append(rec)
	}
	if n.follower == nil {
		return nil
	}
	if err := n.follower.ReplEpoch(n.epoch.Load(), recs); err != nil {
		n.shipErrs.Inc()
		_ = n.follower.Close()
		n.follower = nil
		n.followerAddr = ""
		n.fenceLocked()
		return fmt.Errorf("%w: ship to follower failed, self-demoting: %v", kvnet.ErrFenced, err)
	}
	n.replShipped.Add(uint64(len(recs)))
	return nil
}

// applyRepl answers OpRepl frames: apply each record to the store, append it
// to this node's log, and forward the batch to this node's own follower (so
// a primary that is itself replicated passes client writes down the chain).
// The frame's epoch stamp is the fencing check: a stamp below the highest
// epoch this node has seen is a stale-timeline write (a client or demoted
// primary that missed a promotion) and is rejected with ErrFenced; a higher
// stamp is adopted. Epoch 0 marks an unstamped (pre-fencing) sender and
// passes, preserving wire compatibility.
func (n *Node) applyRepl(epoch uint64, records [][]byte) error {
	if epoch != 0 {
		if cur := n.epoch.Load(); epoch < cur {
			n.fencedWrites.Inc() // nil-safe no-op when uninstrumented
			return fmt.Errorf("%w: repl epoch %d below node epoch %d", kvnet.ErrFenced, epoch, cur)
		}
		n.adoptEpoch(epoch)
	}
	n.applying.Add(1)
	for _, rec := range records {
		if err := durable.ApplyRecord(n.store, rec); err != nil {
			n.applying.Add(-1)
			return err
		}
	}
	n.applying.Add(-1)
	n.replApplied.Add(uint64(len(records)))
	return n.appendAndShip(records)
}

// status answers OpStatus frames: the store clock and the replication log
// head as a (cursor, checksum) pair.
func (n *Node) status() (clock, cursor uint64, crc uint32) {
	cursor, crc = n.log.Status()
	return n.store.Clock(), cursor, crc
}

// mapGet answers OpMapGet frames with the last partition map this node saw.
func (n *Node) mapGet() []byte {
	n.mapMu.Lock()
	defer n.mapMu.Unlock()
	return n.mapBytes
}

// mapSet answers OpMapSet frames, validating before accepting. Stale
// versions are rejected so a delayed push cannot roll the node's view back.
// An accepted map is also learned from: the node adopts its own shard's
// epoch, and a node the map has demoted (it was a shard's primary, now its
// replica) fences itself.
func (n *Node) mapSet(b []byte) error {
	m, err := DecodeMap(b)
	if err != nil {
		return err
	}
	n.mapMu.Lock()
	var prev *Map
	if n.mapBytes != nil {
		if cur, err := DecodeMap(n.mapBytes); err == nil {
			if m.Version < cur.Version {
				n.mapMu.Unlock()
				return fmt.Errorf("cluster: stale partition map version %d < %d", m.Version, cur.Version)
			}
			prev = cur
		}
	}
	n.mapBytes = append([]byte(nil), b...)
	n.mapMu.Unlock()
	n.learnMap(prev, m)
	return nil
}

// SetMap installs a partition map locally (the in-process equivalent of an
// OpMapSet push), with the same epoch learning as mapSet.
func (n *Node) SetMap(m *Map) {
	n.mapMu.Lock()
	var prev *Map
	if n.mapBytes != nil {
		if cur, err := DecodeMap(n.mapBytes); err == nil {
			prev = cur
		}
	}
	n.mapBytes = m.Encode()
	n.mapMu.Unlock()
	n.learnMap(prev, m)
}

// learnMap extracts this node's fencing facts from a newly installed map.
// A shard listing us as primary carries our authoritative epoch. A shard
// listing us as replica demotes us only when our previous map listed us as
// that shard's primary — the map moved past us, so we fence. Without that
// prior-primary condition a fresh follower would fence at cluster startup,
// since initial maps list it as replica at epoch 1 against its epoch 0.
func (n *Node) learnMap(prev, m *Map) {
	for i := range m.Shards {
		s := &m.Shards[i]
		switch n.addr {
		case s.Primary:
			n.adoptEpoch(s.Epoch)
		case s.Replica:
			if prev != nil && i < len(prev.Shards) && prev.Shards[i].Primary == n.addr {
				n.adoptEpoch(s.Epoch)
				n.fence()
			}
		}
	}
}

// AttachFollower makes this node ship its replication stream to the node at
// addr, catching the follower up first. The handshake: read the follower's
// (cursor, checksum) status, verify its log is checksum-identical to our
// first cursor records, stream everything after the cursor in segments, and
// only then attach it for synchronous shipping. A checksum mismatch (or a
// follower ahead of us) returns ErrDivergedFollower — the follower holds
// history we never shipped and must Reset before re-attaching.
func (n *Node) AttachFollower(addr string) error {
	cl, err := kvnet.DialConfig(addr, n.cfg.Follower)
	if err != nil {
		return fmt.Errorf("cluster: attach follower %s: %w", addr, err)
	}
	_, cursor, crc, err := cl.Status()
	if err != nil {
		_ = cl.Close()
		return fmt.Errorf("cluster: follower %s status: %w", addr, err)
	}
	ours, ok := n.log.Checksum(cursor)
	if !ok || ours != crc {
		_ = cl.Close()
		return fmt.Errorf("%w (follower %s at cursor %d)", ErrDivergedFollower, addr, cursor)
	}

	// Stream history and attach under shipMu: writes pause briefly instead
	// of slipping between the end of the stream and the first live ship.
	n.shipMu.Lock()
	defer n.shipMu.Unlock()
	if n.follower != nil {
		_ = n.follower.Close()
		n.follower = nil
		n.followerAddr = ""
	}
	backlog := n.log.Since(cursor)
	for len(backlog) > 0 {
		seg := backlog
		if len(seg) > replSegment {
			seg = seg[:replSegment]
		}
		if err := cl.ReplEpoch(n.epoch.Load(), seg); err != nil {
			_ = cl.Close()
			return fmt.Errorf("cluster: catch-up to %s: %w", addr, err)
		}
		n.replShipped.Add(uint64(len(seg)))
		backlog = backlog[len(seg):]
	}
	n.follower = cl
	n.followerAddr = addr
	return nil
}

// DetachFollower stops shipping and closes the replication link, if any.
func (n *Node) DetachFollower() {
	n.shipMu.Lock()
	defer n.shipMu.Unlock()
	if n.follower != nil {
		_ = n.follower.Close()
		n.follower = nil
		n.followerAddr = ""
	}
}

// FollowerAddr returns the currently attached follower's address, or "".
func (n *Node) FollowerAddr() string {
	n.shipMu.Lock()
	defer n.shipMu.Unlock()
	return n.followerAddr
}

// Reset wipes the node back to empty — tables, clock, replication log, the
// outgoing follower link, and all fencing state — so a node with diverged
// history (a demoted primary rejoining after failover) can re-attach as a
// follower and resync from cursor zero. Dropping the follower link matters:
// a demoted primary usually still ships to the very node that was promoted
// over it, and keeping that link alive would forward the catch-up stream
// back to its source — a replication cycle. The fence clears with the data
// it protected; the cached map clears too, or the next map push would see
// this node as the shard's prior primary and immediately re-fence it. The
// caller must ensure no traffic is being served during the reset.
func (n *Node) Reset() {
	n.shipMu.Lock()
	if n.follower != nil {
		_ = n.follower.Close()
		n.follower = nil
		n.followerAddr = ""
	}
	for _, name := range n.store.TableNames() {
		_ = n.store.DropTable(name)
	}
	n.store.SetClock(0)
	n.log.Reset()
	n.fenced.Store(false)
	n.epoch.Store(0)
	n.shipMu.Unlock()
	n.mapMu.Lock()
	n.mapBytes = nil
	n.mapMu.Unlock()
}

// Close detaches the follower link and shuts the server down.
func (n *Node) Close() error {
	n.DetachFollower()
	return n.srv.Close()
}
