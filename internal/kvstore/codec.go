package kvstore

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrBadFloat is returned when decoding a value that is not an encoded
// float64.
var ErrBadFloat = errors.New("kvstore: value is not an encoded float64")

// floatWidth is the encoded size of a float64 value.
const floatWidth = 8

// EncodeFloat encodes a float64 as 8 big-endian bytes (IEEE 754 bits).
func EncodeFloat(v float64) []byte {
	buf := make([]byte, floatWidth)
	binary.BigEndian.PutUint64(buf, math.Float64bits(v))
	return buf
}

// DecodeFloat decodes a value written by EncodeFloat.
func DecodeFloat(b []byte) (float64, error) {
	if len(b) != floatWidth {
		return 0, ErrBadFloat
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b)), nil
}

// PutFloat writes an encoded float64 at (row, column).
func (t *Table) PutFloat(row, column string, v float64) error {
	return t.Put(row, column, EncodeFloat(v))
}

// GetFloat reads the float64 at (row, column). ok is false when the cell is
// missing or not float-encoded.
func (t *Table) GetFloat(row, column string) (v float64, ok bool) {
	raw, ok := t.Get(row, column)
	if !ok {
		return 0, false
	}
	v, err := DecodeFloat(raw)
	if err != nil {
		return 0, false
	}
	return v, true
}

// FloatValue decodes the cell's value as a float64, returning ok=false when
// it is not float-encoded.
func (c Cell) FloatValue() (float64, bool) {
	v, err := DecodeFloat(c.Version.Value)
	if err != nil {
		return 0, false
	}
	return v, true
}

// ScanFloats scans matching cells and decodes them as float64s keyed by the
// canonical element key "row/column". Non-float cells are skipped. Unlike
// Scan it avoids copying cell values, so it is the preferred bulk numeric
// read.
func (t *Table) ScanFloats(opts ScanOptions) map[string]float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]float64, len(t.rows))
	for row, cols := range t.rows {
		if opts.StartRow != "" && row < opts.StartRow {
			continue
		}
		if opts.EndRow != "" && row >= opts.EndRow {
			continue
		}
		if opts.RowPrefix != "" && !hasPrefix(row, opts.RowPrefix) {
			continue
		}
		for col, versions := range cols {
			if opts.ColumnPrefix != "" && !hasPrefix(col, opts.ColumnPrefix) {
				continue
			}
			if len(versions) == 0 {
				continue
			}
			v, err := DecodeFloat(versions[len(versions)-1].Value)
			if err != nil {
				continue
			}
			out[row+"/"+col] = v
		}
	}
	return out
}

// hasPrefix avoids importing strings into this file.
func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}
