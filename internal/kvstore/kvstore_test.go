package kvstore

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func newTestTable(t *testing.T, opts TableOptions) *Table {
	t.Helper()
	store := New()
	table, err := store.CreateTable("t", opts)
	if err != nil {
		t.Fatal(err)
	}
	return table
}

func TestPutGet(t *testing.T) {
	table := newTestTable(t, TableOptions{})
	if err := table.Put("r1", "c1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, ok := table.Get("r1", "c1")
	if !ok || string(got) != "v1" {
		t.Fatalf("Get = %q, %v; want v1, true", got, ok)
	}
	if _, ok := table.Get("r1", "missing"); ok {
		t.Error("Get of missing column should report !ok")
	}
	if _, ok := table.Get("missing", "c1"); ok {
		t.Error("Get of missing row should report !ok")
	}
}

func TestPutEmptyKeys(t *testing.T) {
	table := newTestTable(t, TableOptions{})
	if err := table.Put("", "c", nil); !errors.Is(err, ErrEmptyKey) {
		t.Errorf("empty row: want ErrEmptyKey, got %v", err)
	}
	if err := table.Put("r", "", nil); !errors.Is(err, ErrEmptyKey) {
		t.Errorf("empty column: want ErrEmptyKey, got %v", err)
	}
}

func TestPutCopiesValue(t *testing.T) {
	table := newTestTable(t, TableOptions{})
	buf := []byte("abc")
	if err := table.Put("r", "c", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	got, _ := table.Get("r", "c")
	if string(got) != "abc" {
		t.Errorf("stored value aliased caller buffer: %q", got)
	}
}

func TestVersioning(t *testing.T) {
	table := newTestTable(t, TableOptions{MaxVersions: 3})
	for i := 0; i < 5; i++ {
		if err := table.Put("r", "c", []byte{byte('0' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	versions := table.GetVersions("r", "c", 0)
	if len(versions) != 3 {
		t.Fatalf("retained %d versions, want 3", len(versions))
	}
	// Newest first.
	if string(versions[0].Value) != "4" || string(versions[2].Value) != "2" {
		t.Errorf("unexpected version order: %q ... %q", versions[0].Value, versions[2].Value)
	}
	if versions[0].Timestamp <= versions[1].Timestamp {
		t.Error("timestamps must decrease from newest to oldest")
	}
	limited := table.GetVersions("r", "c", 2)
	if len(limited) != 2 {
		t.Errorf("GetVersions(max=2) returned %d", len(limited))
	}
}

func TestGetWithPrevious(t *testing.T) {
	table := newTestTable(t, TableOptions{})
	if _, _, curOK, prevOK := table.GetWithPrevious("r", "c"); curOK || prevOK {
		t.Error("missing cell must report neither version")
	}
	table.Put("r", "c", []byte("a"))
	cur, _, curOK, prevOK := table.GetWithPrevious("r", "c")
	if !curOK || prevOK || string(cur) != "a" {
		t.Errorf("after one put: cur=%q curOK=%v prevOK=%v", cur, curOK, prevOK)
	}
	table.Put("r", "c", []byte("b"))
	cur, prev, curOK, prevOK := table.GetWithPrevious("r", "c")
	if !curOK || !prevOK || string(cur) != "b" || string(prev) != "a" {
		t.Errorf("after two puts: cur=%q prev=%q", cur, prev)
	}
}

func TestDelete(t *testing.T) {
	table := newTestTable(t, TableOptions{})
	table.Put("r", "c", []byte("v"))
	if err := table.Delete("r", "c"); err != nil {
		t.Fatal(err)
	}
	if _, ok := table.Get("r", "c"); ok {
		t.Error("cell still present after delete")
	}
	if table.RowCount() != 0 {
		t.Error("row should vanish when its last cell is deleted")
	}
	// Deleting again is a no-op.
	if err := table.Delete("r", "c"); err != nil {
		t.Errorf("double delete: %v", err)
	}
	if err := table.Delete("", "c"); !errors.Is(err, ErrEmptyKey) {
		t.Errorf("want ErrEmptyKey, got %v", err)
	}
}

func TestScanOrderingAndFilters(t *testing.T) {
	table := newTestTable(t, TableOptions{})
	table.Put("b", "y", []byte("4"))
	table.Put("a", "x", []byte("1"))
	table.Put("a", "y", []byte("2"))
	table.Put("c", "x", []byte("5"))
	table.Put("b", "x", []byte("3"))

	cells := table.Scan(ScanOptions{})
	var keys []string
	for _, c := range cells {
		keys = append(keys, c.Key())
	}
	want := []string{"a/x", "a/y", "b/x", "b/y", "c/x"}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("scan order %v, want %v", keys, want)
	}

	if got := table.Scan(ScanOptions{RowPrefix: "b"}); len(got) != 2 {
		t.Errorf("RowPrefix=b returned %d cells, want 2", len(got))
	}
	if got := table.Scan(ScanOptions{ColumnPrefix: "x"}); len(got) != 3 {
		t.Errorf("ColumnPrefix=x returned %d cells, want 3", len(got))
	}
	if got := table.Scan(ScanOptions{StartRow: "b"}); len(got) != 3 {
		t.Errorf("StartRow=b returned %d cells, want 3", len(got))
	}
	if got := table.Scan(ScanOptions{EndRow: "b"}); len(got) != 2 {
		t.Errorf("EndRow=b returned %d cells, want 2", len(got))
	}
	if got := table.Scan(ScanOptions{Limit: 2}); len(got) != 2 {
		t.Errorf("Limit=2 returned %d cells", len(got))
	}
}

func TestScanAfterDeleteUsesFreshCaches(t *testing.T) {
	table := newTestTable(t, TableOptions{})
	table.Put("a", "x", []byte("1"))
	table.Put("b", "x", []byte("2"))
	_ = table.Scan(ScanOptions{}) // warm caches
	table.Delete("a", "x")
	cells := table.Scan(ScanOptions{})
	if len(cells) != 1 || cells[0].Row != "b" {
		t.Fatalf("scan after delete = %+v", cells)
	}
	table.Put("c", "y", []byte("3"))
	cells = table.Scan(ScanOptions{})
	if len(cells) != 2 || cells[1].Row != "c" {
		t.Fatalf("scan after insert = %+v", cells)
	}
}

func TestObserverReceivesMutations(t *testing.T) {
	table := newTestTable(t, TableOptions{})
	var got []Mutation
	table.Subscribe(ObserverFunc(func(m Mutation) { got = append(got, m) }))

	table.Put("r", "c", []byte("a"))
	table.Put("r", "c", []byte("b"))
	table.Delete("r", "c")

	if len(got) != 3 {
		t.Fatalf("observer saw %d mutations, want 3", len(got))
	}
	if got[0].Kind != MutationPut || got[0].Old != nil || string(got[0].New) != "a" {
		t.Errorf("first mutation: %+v", got[0])
	}
	if string(got[1].Old) != "a" || string(got[1].New) != "b" {
		t.Errorf("second mutation old/new: %q/%q", got[1].Old, got[1].New)
	}
	if got[2].Kind != MutationDelete || string(got[2].Old) != "b" || got[2].New != nil {
		t.Errorf("delete mutation: %+v", got[2])
	}
	if got[0].Timestamp >= got[1].Timestamp || got[1].Timestamp >= got[2].Timestamp {
		t.Error("timestamps must be strictly increasing")
	}
}

func TestBatchAtomicVisibilityAndNotifications(t *testing.T) {
	table := newTestTable(t, TableOptions{})
	table.Put("keep", "c", []byte("old"))

	var muts []Mutation
	table.Subscribe(ObserverFunc(func(m Mutation) { muts = append(muts, m) }))

	batch := NewBatch().
		Put("a", "c", []byte("1")).
		Put("b", "c", []byte("2")).
		Delete("keep", "c").
		Delete("missing", "c") // silently skipped
	if batch.Len() != 4 {
		t.Fatalf("batch len = %d", batch.Len())
	}
	if err := table.Apply(batch); err != nil {
		t.Fatal(err)
	}
	if table.CellCount() != 2 {
		t.Errorf("cell count = %d, want 2", table.CellCount())
	}
	// Missing-cell delete produces no mutation.
	if len(muts) != 3 {
		t.Errorf("observer saw %d mutations, want 3", len(muts))
	}
}

func TestBatchValidatesBeforeApplying(t *testing.T) {
	table := newTestTable(t, TableOptions{})
	batch := NewBatch().Put("ok", "c", []byte("1")).Put("", "c", []byte("2"))
	if err := table.Apply(batch); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("want ErrEmptyKey, got %v", err)
	}
	if table.CellCount() != 0 {
		t.Error("failed batch must leave the table untouched")
	}
	if err := table.Apply(nil); err != nil {
		t.Errorf("nil batch: %v", err)
	}
}

func TestStoreTableManagement(t *testing.T) {
	store := New()
	if _, err := store.CreateTable("", TableOptions{}); !errors.Is(err, ErrEmptyKey) {
		t.Errorf("empty name: want ErrEmptyKey, got %v", err)
	}
	if _, err := store.CreateTable("a", TableOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.CreateTable("a", TableOptions{}); !errors.Is(err, ErrTableExists) {
		t.Errorf("want ErrTableExists, got %v", err)
	}
	if _, err := store.Table("missing"); !errors.Is(err, ErrTableNotFound) {
		t.Errorf("want ErrTableNotFound, got %v", err)
	}
	if _, err := store.EnsureTable("a", TableOptions{}); err != nil {
		t.Errorf("EnsureTable existing: %v", err)
	}
	if _, err := store.EnsureTable("b", TableOptions{}); err != nil {
		t.Errorf("EnsureTable new: %v", err)
	}
	names := store.TableNames()
	if !reflect.DeepEqual(names, []string{"a", "b"}) {
		t.Errorf("TableNames = %v", names)
	}
	if err := store.DropTable("a"); err != nil {
		t.Fatal(err)
	}
	if err := store.DropTable("a"); !errors.Is(err, ErrTableNotFound) {
		t.Errorf("double drop: want ErrTableNotFound, got %v", err)
	}
}

func TestTimestampsAreStoreWideMonotonic(t *testing.T) {
	store := New()
	t1, _ := store.CreateTable("t1", TableOptions{})
	t2, _ := store.CreateTable("t2", TableOptions{})
	t1.Put("r", "c", []byte("a"))
	t2.Put("r", "c", []byte("b"))
	v1 := t1.GetVersions("r", "c", 1)
	v2 := t2.GetVersions("r", "c", 1)
	if v2[0].Timestamp <= v1[0].Timestamp {
		t.Error("timestamps must increase across tables of one store")
	}
}

func TestFloatCodecRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true // NaN != NaN; compare bits instead below
		}
		got, err := DecodeFloat(EncodeFloat(v))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// NaN round-trips bit-exactly.
	nan := math.NaN()
	got, err := DecodeFloat(EncodeFloat(nan))
	if err != nil || !math.IsNaN(got) {
		t.Errorf("NaN roundtrip: %v, %v", got, err)
	}
	if _, err := DecodeFloat([]byte{1, 2, 3}); !errors.Is(err, ErrBadFloat) {
		t.Errorf("short buffer: want ErrBadFloat, got %v", err)
	}
}

func TestPutGetFloatAndScanFloats(t *testing.T) {
	table := newTestTable(t, TableOptions{})
	if err := table.PutFloat("r1", "c", 1.5); err != nil {
		t.Fatal(err)
	}
	table.PutFloat("r2", "c", 2.5)
	table.Put("r3", "c", []byte("not-a-float"))

	v, ok := table.GetFloat("r1", "c")
	if !ok || v != 1.5 {
		t.Errorf("GetFloat = %v, %v", v, ok)
	}
	if _, ok := table.GetFloat("r3", "c"); ok {
		t.Error("GetFloat on non-float cell should report !ok")
	}

	floats := table.ScanFloats(ScanOptions{})
	want := map[string]float64{"r1/c": 1.5, "r2/c": 2.5}
	if !reflect.DeepEqual(floats, want) {
		t.Errorf("ScanFloats = %v, want %v", floats, want)
	}
	filtered := table.ScanFloats(ScanOptions{RowPrefix: "r1"})
	if len(filtered) != 1 {
		t.Errorf("filtered ScanFloats = %v", filtered)
	}
}

func TestConcurrentAccess(t *testing.T) {
	table := newTestTable(t, TableOptions{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				row := fmt.Sprintf("r%d", g)
				if err := table.PutFloat(row, "c", float64(i)); err != nil {
					t.Error(err)
					return
				}
				table.Get(row, "c")
				table.Scan(ScanOptions{RowPrefix: row})
			}
		}(g)
	}
	wg.Wait()
	if table.RowCount() != 8 {
		t.Errorf("RowCount = %d, want 8", table.RowCount())
	}
}

func TestMutationKindString(t *testing.T) {
	if MutationPut.String() != "put" || MutationDelete.String() != "delete" {
		t.Error("unexpected MutationKind strings")
	}
	if MutationKind(99).String() == "" {
		t.Error("unknown kind must still render")
	}
}

func TestScanValueIsolation(t *testing.T) {
	table := newTestTable(t, TableOptions{})
	table.Put("r", "c", []byte("abc"))
	cells := table.Scan(ScanOptions{})
	cells[0].Version.Value[0] = 'X'
	got, _ := table.Get("r", "c")
	if string(got) != "abc" {
		t.Error("scan must return copies, not aliases")
	}
}
