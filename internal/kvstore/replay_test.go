package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// dump renders every cell with all versions and timestamps so tests can
// assert bit-identical state.
func dumpTable(t *Table) string {
	var buf bytes.Buffer
	for _, c := range t.Scan(ScanOptions{}) {
		for _, v := range t.GetVersions(c.Row, c.Column, 0) {
			fmt.Fprintf(&buf, "%s/%s @%d = %x\n", c.Row, c.Column, v.Timestamp, v.Value)
		}
	}
	return buf.String()
}

func TestReplayReproducesLiveSequence(t *testing.T) {
	live := New()
	lt, err := live.CreateTable("t", TableOptions{MaxVersions: 2})
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		row, col string
		val      []byte
		ts       uint64
		del      bool
	}
	var log []rec
	lt.Subscribe(ObserverFunc(func(m Mutation) {
		log = append(log, rec{m.Row, m.Column, m.New, m.Timestamp, m.Kind == MutationDelete})
	}))
	for i := 0; i < 5; i++ {
		if err := lt.Put("r1", "c1", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := lt.Put("r2", "c1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := lt.Delete("r2", "c1"); err != nil {
		t.Fatal(err)
	}
	if err := lt.Put("r2", "c2", []byte("y")); err != nil {
		t.Fatal(err)
	}

	replayed := New()
	rt, err := replayed.CreateTable("t", TableOptions{MaxVersions: 2})
	if err != nil {
		t.Fatal(err)
	}
	apply := func() {
		for _, r := range log {
			if r.del {
				if err := rt.ReplayDelete(r.row, r.col); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if err := rt.ReplayPut(r.row, r.col, r.val, r.ts); err != nil {
				t.Fatal(err)
			}
		}
	}
	apply()
	replayed.SetClock(live.Clock())

	if got, want := dumpTable(rt), dumpTable(lt); got != want {
		t.Fatalf("replayed state differs:\ngot:\n%swant:\n%s", got, want)
	}
	if got, want := replayed.Clock(), live.Clock(); got != want {
		t.Fatalf("clock = %d, want %d", got, want)
	}

	// Replaying the whole log a second time must be a no-op.
	before := dumpTable(rt)
	apply()
	if got := dumpTable(rt); got != before {
		t.Fatalf("duplicate replay changed state:\ngot:\n%swas:\n%s", got, before)
	}

	// The restored clock must continue the original timestamp sequence.
	if err := rt.Put("r3", "c1", []byte("z")); err != nil {
		t.Fatal(err)
	}
	if err := lt.Put("r3", "c1", []byte("z")); err != nil {
		t.Fatal(err)
	}
	if got, want := dumpTable(rt), dumpTable(lt); got != want {
		t.Fatalf("post-replay writes diverge:\ngot:\n%swant:\n%s", got, want)
	}
}

func TestReplayPutOutOfOrder(t *testing.T) {
	s := New()
	tab, err := s.CreateTable("t", TableOptions{MaxVersions: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range []uint64{5, 2, 9, 7} {
		if err := tab.ReplayPut("r", "c", []byte{byte(ts)}, ts); err != nil {
			t.Fatal(err)
		}
	}
	vs := tab.GetVersions("r", "c", 0) // newest first
	var got []uint64
	for _, v := range vs {
		got = append(got, v.Timestamp)
	}
	want := []uint64{9, 7, 5} // ts=2 trimmed as oldest beyond MaxVersions
	if len(got) != len(want) {
		t.Fatalf("versions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("versions = %v, want %v", got, want)
		}
	}
	cur, ok := tab.Get("r", "c")
	if !ok || !bytes.Equal(cur, []byte{9}) {
		t.Fatalf("latest = %x ok=%v, want 09", cur, ok)
	}
}

func TestReplayEmptyKeyAndMissingDelete(t *testing.T) {
	s := New()
	tab, err := s.CreateTable("t", TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.ReplayPut("", "c", nil, 1); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("ReplayPut empty row: err = %v, want ErrEmptyKey", err)
	}
	if err := tab.ReplayDelete("r", ""); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("ReplayDelete empty col: err = %v, want ErrEmptyKey", err)
	}
	if err := tab.ReplayDelete("no", "cell"); err != nil {
		t.Fatalf("ReplayDelete missing cell: err = %v, want nil", err)
	}
}

func TestMaxVersionsAccessor(t *testing.T) {
	s := New()
	def, err := s.CreateTable("def", TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := def.MaxVersions(); got != DefaultMaxVersions {
		t.Fatalf("MaxVersions = %d, want %d", got, DefaultMaxVersions)
	}
	five, err := s.CreateTable("five", TableOptions{MaxVersions: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := five.MaxVersions(); got != 5 {
		t.Fatalf("MaxVersions = %d, want 5", got)
	}
}

func TestOnTableCreateHook(t *testing.T) {
	s := New()
	if _, err := s.CreateTable("before", TableOptions{}); err != nil {
		t.Fatal(err)
	}
	var created []string
	s.OnTableCreate(func(tab *Table) { created = append(created, tab.Name()) })
	s.OnTableCreate(nil) // must be ignored
	if _, err := s.CreateTable("a", TableOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnsureTable("b", TableOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnsureTable("b", TableOptions{}); err != nil {
		t.Fatal(err) // existing: no second fire
	}
	if len(created) != 2 || created[0] != "a" || created[1] != "b" {
		t.Fatalf("created = %v, want [a b]", created)
	}

	// The hook must be able to subscribe before any mutation is visible.
	var muts []Mutation
	s.OnTableCreate(func(tab *Table) {
		tab.Subscribe(ObserverFunc(func(m Mutation) { muts = append(muts, m) }))
	})
	tab, err := s.CreateTable("c", TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Put("r", "c", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if len(muts) != 1 || muts[0].Table != "c" {
		t.Fatalf("hook-subscribed observer saw %v, want one mutation on table c", muts)
	}
}
