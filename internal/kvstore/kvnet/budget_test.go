package kvnet

// Retry-budget and op-deadline regression tests (the unbounded-reconnect
// fix): a client facing a permanently dead peer must fail its operations
// with a typed ErrUnavailable once the per-op deadline passes or the retry
// budget drains — never spin through MaxRetries' worth of redials when the
// configuration says to give up sooner.

import (
	"errors"
	"testing"
	"time"

	"smartflux/internal/kvstore"
	"smartflux/internal/obs"
)

// deadCfg is a config whose MaxRetries alone would retry for a very long
// time; the budget/deadline under test must cut it short.
func deadCfg() ClientConfig {
	return ClientConfig{
		DialTimeout:  200 * time.Millisecond,
		ReadTimeout:  200 * time.Millisecond,
		WriteTimeout: 200 * time.Millisecond,
		MaxRetries:   1000,
		RetryBackoff: time.Millisecond,
	}
}

// TestOpTimeoutCapsReconnectRetries kills the server for good and checks an
// op with OpTimeout fails with ErrUnavailable well before MaxRetries×backoff
// would — the reconnect loop is capped against the op deadline.
func TestOpTimeoutCapsReconnectRetries(t *testing.T) {
	store := kvstore.New()
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := deadCfg()
	cfg.OpTimeout = 300 * time.Millisecond
	client, err := DialConfig(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.CreateTable("t", 0); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil { // the peer is gone, permanently
		t.Fatal(err)
	}

	start := time.Now()
	err = client.PutFloat("t", "r", "c", 1)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("op against dead peer = %v, want ErrUnavailable", err)
	}
	if !IsTransport(err) {
		t.Fatalf("deadline failure %v must be transport-level for failover routing", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("op took %v; OpTimeout=300ms did not cap the reconnect loop", elapsed)
	}
}

// TestRetryBudgetExhaustion gives the client a two-token budget against a
// dead peer: the op fails with ErrUnavailable once the budget drains, and
// the exhaustion counter records it.
func TestRetryBudgetExhaustion(t *testing.T) {
	store := kvstore.New()
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg := deadCfg()
	cfg.RetryBudget = 2
	cfg.Obs = obs.New(reg)
	client, err := DialConfig(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.CreateTable("t", 0); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	err = client.PutFloat("t", "r", "c", 1)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("op with drained budget = %v, want ErrUnavailable", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("op took %v; a 2-token budget must not ride out 1000 retries", elapsed)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["smartflux_kvnet_client_budget_exhausted_total"]; got < 1 {
		t.Fatalf("budget exhaustion counter = %d, want >= 1", got)
	}
}

// TestRetryBudgetRefillsOnSuccess: completed frames earn budget back, so a
// client that mostly succeeds never starves even with a small budget.
func TestRetryBudgetRefillsOnSuccess(t *testing.T) {
	_, addr := startServer(t)
	cfg := deadCfg()
	cfg.RetryBudget = 1
	cfg.RetryRefill = 0.5
	client, err := DialConfig(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.CreateTable("t", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := client.PutFloat("t", "r", "c", float64(i)); err != nil {
			t.Fatalf("put %d on a healthy link: %v (budget must refill on success)", i, err)
		}
	}
}
