// Package kvnet exposes a kvstore.Store over TCP so workflow steps running in
// separate processes can share data containers, mirroring the paper's setup
// where steps interact with a remote HBase cluster through (intercepted)
// client libraries.
//
// The wire protocol is the length-prefixed binary framing of
// internal/kvstore/wire (DESIGN.md §13): every frame carries a magic,
// version, op, flags, a client-assigned sequence number and a payload
// length. Requests are pipelined — a client keeps many frames in flight on
// one connection and demultiplexes responses by sequence number — and Scan
// responses stream back as chunks of at most wire.ScanChunkCells cells, so
// neither side materializes whole result sets. Peers speaking the legacy
// gob protocol (or a different frame version) fail loudly at the first
// frame instead of corrupting state.
//
// # Resilience
//
// The client survives transient transport failures when ClientConfig enables
// retries: a failed connection epoch tears the socket down, redials with
// exponential backoff and seeded jitter, and re-sends every frame that was
// in flight under its original sequence number. Reads (Get, Scan) are
// idempotent and always retryable; mutating ops (Put, Delete, Apply) are
// retryable because the server keeps a per-client window of recently applied
// sequence numbers — a retry of an op the server already applied returns the
// remembered outcome instead of applying twice, even with many mutating ops
// in flight. CreateTable maps to EnsureTable server-side and is idempotent
// by construction. Application-level errors (an error response frame) mean
// the op executed; they are returned immediately and never retried.
//
// The server drains gracefully on Close: in-flight requests finish and their
// responses are flushed within a bounded drain window before connections
// close, so a shutdown never chops a response mid-frame.
package kvnet

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"syscall"
	"time"

	"smartflux/internal/kvstore"
	"smartflux/internal/kvstore/wire"
	"smartflux/internal/obs"
)

// Sentinel errors, matchable with errors.Is through every kvnet wrapper.
var (
	// ErrClosed reports an operation on a client whose Close has begun. It
	// replaces the raw net errors a concurrent Close used to surface.
	ErrClosed = errors.New("kvnet: client closed")
	// ErrTimeout reports an I/O deadline expiring on a round trip. The
	// original net.Error remains reachable via errors.As.
	ErrTimeout = errors.New("kvnet: i/o timeout")
	// ErrFenced reports a write rejected by epoch fencing: the frame's epoch
	// is stale or the serving node has demoted itself to read-only
	// (DESIGN.md §15). It crosses the wire as wire.FlagFenced, so a client's
	// error stays errors.Is-matchable after the round trip.
	ErrFenced = errors.New("kvnet: fenced: stale epoch or demoted node")
	// ErrUnavailable reports an operation abandoned without executing: the
	// retry budget ran dry or the op deadline expired while the peer stayed
	// unreachable. Callers get a prompt typed failure instead of an unbounded
	// reconnect loop.
	ErrUnavailable = errors.New("kvnet: peer unavailable")
)

// DefaultDrainTimeout bounds how long Server.Close lets in-flight responses
// flush before forcing connections down.
const DefaultDrainTimeout = time.Second

// serverBufSize sizes the per-connection buffered reader and writer. Reads
// batch pipelined request frames into one syscall; writes coalesce response
// frames until the inbound buffer runs dry.
const serverBufSize = 64 << 10

// dedupWindowSize bounds the per-client window of remembered mutating
// sequence numbers. It must exceed the client's in-flight cap
// (maxInflightFrames) with room to spare, so a retried frame's sequence
// number can never have been evicted while the retry was still possible.
const dedupWindowSize = 4096

// Server serves a Store over TCP.
type Server struct {
	store *kvstore.Store

	mu         sync.Mutex
	listener   net.Listener
	conns      map[net.Conn]struct{}
	wg         sync.WaitGroup
	closed     bool
	drain      time.Duration
	firstErr   error // first async serving error (decode/encode/accept)
	errHandler func(error)

	// dedup holds one bounded window of applied (seq → outcome) entries per
	// client, keyed by ClientID — the server half of exactly-once retries
	// under pipelining, where many mutating ops are in flight at once.
	dedupMu sync.Mutex
	dedup   map[uint64]*dedupWindow

	// Cluster control-plane hooks (DESIGN.md §14), installed by
	// kvstore/cluster before Listen. All are optional: without a repl
	// handler OpRepl frames are rejected, without map handlers OpMapGet /
	// OpMapSet are, and without a status handler OpStatus reports the
	// store's clock with a zero log cursor.
	replApply func(epoch uint64, records [][]byte) error
	statusFn  func() (clock, cursor uint64, crc uint32)
	mapGetFn  func() []byte
	mapSetFn  func(m []byte) error
	writeGate func() error

	obs *serverObs
}

// dedupWindow remembers the outcomes ("" = applied cleanly, else the
// application error string) of one client's most recent mutating sequence
// numbers, evicting FIFO beyond dedupWindowSize.
type dedupWindow struct {
	outcome map[uint64]string
	ring    []uint64
	next    int
}

// lookup returns the remembered outcome of seq, if still in the window.
func (w *dedupWindow) lookup(seq uint64) (string, bool) {
	msg, ok := w.outcome[seq]
	return msg, ok
}

// record remembers seq's outcome, evicting the oldest entry when full.
func (w *dedupWindow) record(seq uint64, msg string) {
	if len(w.ring) < dedupWindowSize {
		w.ring = append(w.ring, seq)
	} else {
		delete(w.outcome, w.ring[w.next])
		w.ring[w.next] = seq
		w.next = (w.next + 1) % dedupWindowSize
	}
	w.outcome[seq] = msg
}

// serverObs carries the server's pre-resolved instruments.
type serverObs struct {
	o          *obs.Observer
	requests   [wire.NumOps]*obs.Counter
	reqDur     *obs.Histogram
	decodeErrs *obs.Counter
	encodeErrs *obs.Counter
	acceptErrs *obs.Counter
	conns      *obs.Counter
	dedupHits  *obs.Counter
	bytesSent  *obs.Counter
	bytesRecv  *obs.Counter
}

// NewServer creates a server for the given store with the default graceful
// drain window.
func NewServer(store *kvstore.Store) *Server {
	return &Server{
		store: store,
		conns: make(map[net.Conn]struct{}),
		drain: DefaultDrainTimeout,
		dedup: make(map[uint64]*dedupWindow),
	}
}

// SetDrainTimeout adjusts how long Close waits for in-flight responses to
// flush. Zero (or negative) disables draining: Close tears connections down
// immediately. Call before Close.
func (s *Server) SetDrainTimeout(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drain = d
}

// Instrument attaches an observer to the server: per-op request counters, a
// request-latency histogram, connection counts, retry-dedup hits, exact
// on-wire byte counters, and decode/encode/accept error counters (plus a
// per-connection error counter labeled by remote address). Call before
// Listen; passing nil detaches.
func (s *Server) Instrument(o *obs.Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if o == nil {
		s.obs = nil
		return
	}
	so := &serverObs{
		o:          o,
		reqDur:     o.Histogram("smartflux_kvnet_request_duration_seconds"),
		decodeErrs: o.Counter(`smartflux_kvnet_errors_total{kind="decode"}`),
		encodeErrs: o.Counter(`smartflux_kvnet_errors_total{kind="encode"}`),
		acceptErrs: o.Counter(`smartflux_kvnet_errors_total{kind="accept"}`),
		conns:      o.Counter("smartflux_kvnet_connections_total"),
		dedupHits:  o.Counter("smartflux_kvnet_dedup_hits_total"),
		bytesSent:  o.Counter(`smartflux_kvnet_bytes_total{dir="sent"}`),
		bytesRecv:  o.Counter(`smartflux_kvnet_bytes_total{dir="recv"}`),
	}
	// The hello preamble is connection plumbing, not a request: it gets no
	// counter and no latency sample.
	for op := wire.OpCreateTable; int(op) < wire.NumOps; op++ {
		so.requests[op] = o.Counter(fmt.Sprintf("smartflux_kvnet_requests_total{op=%q}", wire.OpName(op)))
	}
	s.obs = so
}

// SetReplHandler installs the callback answering OpRepl frames: a batch of
// replication records to apply (idempotently — records carry explicit
// timestamps) to this node's store, stamped with the sender's shard epoch
// (0 = unstamped legacy sender). Call before Listen; without a handler
// replication frames are rejected with an application error.
func (s *Server) SetReplHandler(fn func(epoch uint64, records [][]byte) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.replApply = fn
}

// SetWriteGate installs a hook consulted before every mutating op and every
// OpRepl frame. A non-nil error rejects the request without executing it —
// the hook a fenced (demoted, read-only) cluster node uses to refuse writes.
// Errors wrapping ErrFenced cross the wire flagged wire.FlagFenced. Call
// before Listen.
func (s *Server) SetWriteGate(fn func() error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeGate = fn
}

// SetStatusHandler installs the callback answering OpStatus frames with the
// node's replication status (clock, log cursor, cursor checksum). Call
// before Listen; without a handler OpStatus reports the store clock and a
// zero cursor.
func (s *Server) SetStatusHandler(fn func() (clock, cursor uint64, crc uint32)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.statusFn = fn
}

// SetMapHandlers installs the callbacks answering partition-map frames:
// get returns the node's current encoded map (nil = none yet), set replaces
// it. Call before Listen; without handlers map frames are rejected.
func (s *Server) SetMapHandlers(get func() []byte, set func(m []byte) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mapGetFn, s.mapSetFn = get, set
}

// SetErrorHandler registers a callback invoked (from the serving goroutines)
// with every asynchronous error the server hits: request decode failures,
// response encode failures and listener accept failures. Clean client
// disconnects (EOF, resets, closed connections) are not errors. Call before
// Listen.
func (s *Server) SetErrorHandler(fn func(error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.errHandler = fn
}

// Err returns the first asynchronous serving error observed, or nil. It
// complements SetErrorHandler for callers that only need a post-hoc check
// (e.g. after Close).
func (s *Server) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.firstErr
}

// reportErr records an async error: first-error retention, the registered
// handler, the aggregate kind counter and a per-connection counter when a
// remote address is known.
func (s *Server) reportErr(kind *obs.Counter, remote string, err error) {
	kind.Inc()
	if so := s.obs; so != nil && remote != "" {
		so.o.Counter(fmt.Sprintf("smartflux_kvnet_conn_errors_total{remote=%q}", remote)).Inc()
	}
	s.mu.Lock()
	if s.firstErr == nil {
		s.firstErr = err
	}
	handler := s.errHandler
	s.mu.Unlock()
	if handler != nil {
		handler(err)
	}
}

// isClosed reports whether Close has begun.
func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serving happens on background goroutines; call
// Close to stop them.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("kvnet listen: %w", err)
	}
	return s.ServeListener(ln)
}

// ServeListener starts accepting connections on an already-bound listener —
// the interposition point for fault-injecting wrappers (internal/fault's
// WrapListener) and custom transports. The server takes ownership of ln and
// returns its address.
func (s *Server) ServeListener(ln net.Listener) (string, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return "", errors.New("kvnet: server closed")
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) || s.isClosed() {
				return // listener closed by Close
			}
			// A failing listener is a real fault: surface it instead of
			// silently stopping the accept loop.
			var acceptErrs *obs.Counter
			if so := s.obs; so != nil {
				acceptErrs = so.acceptErrs
			}
			s.reportErr(acceptErrs, "", fmt.Errorf("kvnet accept: %w", err))
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		if so := s.obs; so != nil {
			so.conns.Inc()
		}

		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			_ = s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// cleanDisconnect reports whether a connection error is a normal client
// departure rather than a protocol fault: EOF between frames, a reset or
// broken pipe from an abruptly killed client, or our own shutdown. A
// mid-frame EOF (io.ErrUnexpectedEOF) is deliberately NOT clean — a
// truncated frame is indistinguishable from corrupt data and stays
// observable through the decode-error counter and handler.
func cleanDisconnect(err error) bool {
	return errors.Is(err, io.EOF) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE)
}

// serveConn answers one client connection until it closes. The first frame
// must be the hello preamble carrying the client's dedup identity; request
// frames are then answered in arrival order, with responses buffered and
// flushed once the inbound buffer runs dry (so a pipelined burst costs one
// write syscall, not one per response). A clean disconnect (EOF or reset
// between frames — killed clients are routine under connection churn — or
// the server shutting down) returns nil; decode and encode failures are
// reported through the error counters and handler, and returned.
func (s *Server) serveConn(conn net.Conn) error {
	// Close errors after a finished (or already failed) session are noise.
	defer func() { _ = conn.Close() }()
	remote := conn.RemoteAddr().String()
	so := s.obs
	br := bufio.NewReaderSize(conn, serverBufSize)
	bw := bufio.NewWriterSize(conn, serverBufSize)
	in := wire.GetBuffer()
	defer in.Release()
	out := wire.GetBuffer()
	defer out.Release()

	decodeFail := func(err error) error {
		err = fmt.Errorf("kvnet decode from %s: %w", remote, err)
		var decodeErrs *obs.Counter
		if so != nil {
			decodeErrs = so.decodeErrs
		}
		s.reportErr(decodeErrs, remote, err)
		return err
	}
	encodeFail := func(err error) error {
		err = fmt.Errorf("kvnet encode to %s: %w", remote, err)
		var encodeErrs *obs.Counter
		if so != nil {
			encodeErrs = so.encodeErrs
		}
		s.reportErr(encodeErrs, remote, err)
		return err
	}

	var clientID uint64
	helloSeen := false
	for {
		h, payload, err := wire.ReadFrame(br, in)
		if err != nil {
			if errors.Is(err, wire.ErrVersion) {
				// Fail loudly toward the peer before hanging up: address the
				// rejection to the offending frame so a newer client can
				// surface "version mismatch" instead of a silent drop.
				out.Reset()
				wire.AppendErrResponse(out, h.Op, h.Seq, "kvnet: "+err.Error())
				_, _ = bw.Write(out.Bytes())
				_ = bw.Flush()
			}
			if cleanDisconnect(err) || s.isClosed() {
				return nil // clean disconnect or server shutdown
			}
			// Garbage on the wire (including legacy gob peers, torn frames
			// and version mismatches): a fault worth surfacing, not a normal
			// hang-up.
			return decodeFail(err)
		}
		if so != nil {
			so.bytesRecv.Add(uint64(wire.HeaderSize + len(payload)))
		}
		req, err := wire.DecodeRequest(h, payload)
		if err != nil {
			return decodeFail(err)
		}
		if req.Op == wire.OpHello {
			// One-way preamble: record the dedup identity, send nothing. The
			// first bytes a client ever reads are its first op's response.
			clientID = req.ClientID
			helloSeen = true
			continue
		}
		if !helloSeen {
			return decodeFail(fmt.Errorf("%s frame before hello preamble", wire.OpName(req.Op)))
		}

		var start time.Time
		if so != nil {
			start = time.Now()
		}
		werr := s.serveRequest(&req, clientID, bw, out)
		if so != nil {
			so.reqDur.Observe(time.Since(start).Seconds())
			so.requests[req.Op].Inc()
		}
		if werr == nil && br.Buffered() == 0 {
			werr = bw.Flush()
		}
		if werr != nil {
			if cleanDisconnect(werr) || s.isClosed() {
				return nil
			}
			return encodeFail(werr)
		}
	}
}

// serveRequest answers one decoded request, writing its response frame(s)
// into bw via the scratch buffer out. The returned error is a transport
// write failure; application errors travel inside error response frames.
func (s *Server) serveRequest(req *wire.Request, clientID uint64, bw *bufio.Writer, out *wire.Buffer) error {
	if req.Op == wire.OpScan {
		return s.serveScan(req, bw, out)
	}
	out.Reset()
	// The write gate runs before dedup: a gate rejection reflects the node's
	// current role, not the op's outcome, so it must never be remembered as
	// one.
	if (wire.Mutating(req.Op) || req.Op == wire.OpRepl) && s.writeGate != nil {
		if err := s.writeGate(); err != nil {
			appendError(out, req.Op, req.Seq, err)
			return s.writeFrames(bw, out)
		}
	}
	switch {
	case req.Op == wire.OpPing:
		wire.AppendOKResponse(out, wire.OpPing, req.Seq)
	case req.Op == wire.OpStatus:
		if s.statusFn != nil {
			clock, cursor, crc := s.statusFn()
			wire.AppendStatusResponse(out, req.Seq, clock, cursor, crc)
		} else {
			wire.AppendStatusResponse(out, req.Seq, s.store.Clock(), 0, 0)
		}
	case req.Op == wire.OpRepl:
		if s.replApply == nil {
			wire.AppendErrResponse(out, wire.OpRepl, req.Seq, "kvnet: node accepts no replication stream")
			break
		}
		// No dedup entry: replication records replay idempotently by
		// explicit timestamp, so a retried batch is harmless by design.
		if err := s.replApply(req.Epoch, req.Records); err != nil {
			appendError(out, wire.OpRepl, req.Seq, err)
		} else {
			wire.AppendOKResponse(out, wire.OpRepl, req.Seq)
		}
	case req.Op == wire.OpMapGet:
		if s.mapGetFn == nil {
			wire.AppendErrResponse(out, wire.OpMapGet, req.Seq, "kvnet: node serves no partition map")
			break
		}
		wire.AppendMapResponse(out, req.Seq, s.mapGetFn())
	case req.Op == wire.OpMapSet:
		if s.mapSetFn == nil {
			wire.AppendErrResponse(out, wire.OpMapSet, req.Seq, "kvnet: node accepts no partition map")
			break
		}
		appendResult(out, wire.OpMapSet, req.Seq, errString(s.mapSetFn(req.Map)))
	case req.Op == wire.OpGet:
		t, err := s.store.Table(req.Table)
		if err != nil {
			wire.AppendErrResponse(out, wire.OpGet, req.Seq, err.Error())
			break
		}
		v, found := t.Get(req.Row, req.Column)
		wire.AppendGetResponse(out, req.Seq, v, found)
	case req.Op == wire.OpCreateTable:
		// Idempotent by construction; no dedup entry needed.
		_, err := s.store.EnsureTable(req.Table, kvstore.TableOptions{MaxVersions: req.MaxVers})
		appendResult(out, req.Op, req.Seq, errString(err))
	case wire.Mutating(req.Op) && clientID != 0 && req.Seq != 0:
		if msg, ok := s.dedupLookup(clientID, req.Seq); ok {
			if so := s.obs; so != nil {
				so.dedupHits.Inc()
			}
			appendResult(out, req.Op, req.Seq, msg)
			break
		}
		msg := errString(s.applyMutation(req))
		s.dedupRecord(clientID, req.Seq, msg)
		appendResult(out, req.Op, req.Seq, msg)
	default:
		// Mutating op without a dedup identity (seq 0): apply uncached.
		appendResult(out, req.Op, req.Seq, errString(s.applyMutation(req)))
	}
	return s.writeFrames(bw, out)
}

// serveScan streams one scan as chunked response frames straight off the
// store's shared-page scanner: cell values are serialized while they alias
// live store memory and never copied.
func (s *Server) serveScan(req *wire.Request, bw *bufio.Writer, out *wire.Buffer) error {
	t, err := s.store.Table(req.Table)
	if err != nil {
		out.Reset()
		wire.AppendErrResponse(out, wire.OpScan, req.Seq, err.Error())
		return s.writeFrames(bw, out)
	}
	if req.Flags&wire.FlagVersions != 0 {
		return s.serveScanVersions(t, req, bw, out)
	}
	return t.ScanPagesShared(req.Scan, wire.ScanChunkCells, func(cells []kvstore.Cell, final bool) error {
		out.Reset()
		wire.AppendScanChunk(out, req.Seq, cells, final)
		return s.writeFrames(bw, out)
	})
}

// serveScanVersions streams every retained version of every matching cell
// (newest first per cell, cells in key order) — the cluster dump path. It
// is not a hot path: the cell list is materialized up front and versions
// are re-read per cell, trading a lock acquisition per cell for simplicity.
func (s *Server) serveScanVersions(t *kvstore.Table, req *wire.Request, bw *bufio.Writer, out *wire.Buffer) error {
	cells := t.Scan(req.Scan)
	chunk := make([]kvstore.Cell, 0, wire.ScanChunkCells)
	flush := func(final bool) error {
		out.Reset()
		wire.AppendScanChunk(out, req.Seq, chunk, final)
		chunk = chunk[:0]
		return s.writeFrames(bw, out)
	}
	for i := range cells {
		for _, v := range t.GetVersions(cells[i].Row, cells[i].Column, 0) {
			chunk = append(chunk, kvstore.Cell{Row: cells[i].Row, Column: cells[i].Column, Version: v})
			if len(chunk) == wire.ScanChunkCells {
				if err := flush(false); err != nil {
					return err
				}
			}
		}
	}
	return flush(true)
}

// writeFrames copies one encoded response (or chunk) into the buffered
// writer, counting exact on-wire bytes.
func (s *Server) writeFrames(bw *bufio.Writer, out *wire.Buffer) error {
	if _, err := bw.Write(out.Bytes()); err != nil {
		return err
	}
	if so := s.obs; so != nil {
		so.bytesSent.Add(uint64(out.Len()))
	}
	return nil
}

// applyMutation applies one mutating request to the store.
func (s *Server) applyMutation(req *wire.Request) error {
	t, err := s.store.Table(req.Table)
	if err != nil {
		return err
	}
	switch req.Op {
	case wire.OpPut:
		return t.Put(req.Row, req.Column, req.Value)
	case wire.OpDelete:
		return t.Delete(req.Row, req.Column)
	case wire.OpApply:
		b := kvstore.NewBatch()
		for _, o := range req.Ops {
			if o.Delete {
				b.Delete(o.Row, o.Column)
			} else {
				b.Put(o.Row, o.Column, o.Value)
			}
		}
		return t.Apply(b)
	default:
		return fmt.Errorf("kvnet: op %s is not a mutation", wire.OpName(req.Op))
	}
}

// dedupLookup consults the client's dedup window for an already-applied seq.
func (s *Server) dedupLookup(clientID, seq uint64) (string, bool) {
	s.dedupMu.Lock()
	defer s.dedupMu.Unlock()
	w, ok := s.dedup[clientID]
	if !ok {
		return "", false
	}
	return w.lookup(seq)
}

// dedupRecord remembers an applied seq's outcome in the client's window.
func (s *Server) dedupRecord(clientID, seq uint64, msg string) {
	s.dedupMu.Lock()
	defer s.dedupMu.Unlock()
	w, ok := s.dedup[clientID]
	if !ok {
		w = &dedupWindow{outcome: make(map[uint64]string)}
		s.dedup[clientID] = w
	}
	w.record(seq, msg)
}

// appendResult encodes a mutating op's outcome: an empty message is a bare
// OK frame, anything else an error frame.
func appendResult(out *wire.Buffer, op byte, seq uint64, msg string) {
	if msg == "" {
		wire.AppendOKResponse(out, op, seq)
	} else {
		wire.AppendErrResponse(out, op, seq, msg)
	}
}

// appendError encodes an application error, preserving epoch-fencing
// rejections as wire.FlagFenced so clients can match them with errors.Is.
func appendError(out *wire.Buffer, op byte, seq uint64, err error) {
	if errors.Is(err, ErrFenced) {
		wire.AppendErrResponseFlags(out, op, seq, wire.FlagFenced, err.Error())
		return
	}
	wire.AppendErrResponse(out, op, seq, err.Error())
}

// errString flattens an error for the wire.
func errString(err error) string {
	if err != nil {
		return err.Error()
	}
	return ""
}

// Close stops the listener, drains live connections and waits for all
// serving goroutines to exit. With a positive drain window (the default),
// idle connections wake and close immediately while in-flight requests get
// up to the window to flush their response; a zero window closes
// connections outright. Close is idempotent and safe to call concurrently.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.listener
	// Deadline calls never block, so draining the live connections directly
	// under the lock is safe and keeps the set consistent with serveConn's
	// removals.
	now := time.Now()
	for conn := range s.conns {
		if s.drain > 0 {
			// Wake decodes blocked between frames right away; give writes
			// of already-accepted requests the drain window to flush.
			_ = conn.SetReadDeadline(now)
			_ = conn.SetWriteDeadline(now.Add(s.drain))
		} else {
			_ = conn.Close()
		}
	}
	s.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}
