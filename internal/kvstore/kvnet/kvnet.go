// Package kvnet exposes a kvstore.Store over TCP so workflow steps running in
// separate processes can share data containers, mirroring the paper's setup
// where steps interact with a remote HBase cluster through (intercepted)
// client libraries.
//
// The wire protocol is a simple request/response stream of gob-encoded
// frames over one TCP connection per client. Every client request carries an
// Op tag; the server answers each request exactly once, in order.
package kvnet

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"smartflux/internal/kvstore"
	"smartflux/internal/obs"
)

// op identifies the request type.
type op int

const (
	opCreateTable op = iota + 1
	opPut
	opGet
	opDelete
	opScan
	opApply

	opCount = int(opApply) + 1
)

// opName names each request type for metric labels.
func opName(o op) string {
	switch o {
	case opCreateTable:
		return "create_table"
	case opPut:
		return "put"
	case opGet:
		return "get"
	case opDelete:
		return "delete"
	case opScan:
		return "scan"
	case opApply:
		return "apply"
	default:
		return "unknown"
	}
}

// request is the client → server frame.
type request struct {
	Op          op
	Table       string
	Row         string
	Column      string
	Value       []byte
	MaxVersions int
	Scan        kvstore.ScanOptions
	Ops         []kvstore.Op
}

// response is the server → client frame.
type response struct {
	Err   string
	Value []byte
	Found bool
	Cells []kvstore.Cell
}

// Server serves a Store over TCP.
type Server struct {
	store *kvstore.Store

	mu         sync.Mutex
	listener   net.Listener
	conns      map[net.Conn]struct{}
	wg         sync.WaitGroup
	closed     bool
	firstErr   error // first async serving error (decode/encode/accept)
	errHandler func(error)

	obs *serverObs
}

// serverObs carries the server's pre-resolved instruments.
type serverObs struct {
	o          *obs.Observer
	requests   [opCount]*obs.Counter
	reqDur     *obs.Histogram
	decodeErrs *obs.Counter
	encodeErrs *obs.Counter
	acceptErrs *obs.Counter
	conns      *obs.Counter
}

// NewServer creates a server for the given store.
func NewServer(store *kvstore.Store) *Server {
	return &Server{
		store: store,
		conns: make(map[net.Conn]struct{}),
	}
}

// Instrument attaches an observer to the server: per-op request counters, a
// request-latency histogram, connection counts, and decode/encode/accept
// error counters (plus a per-connection error counter labeled by remote
// address). Call before Listen; passing nil detaches.
func (s *Server) Instrument(o *obs.Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if o == nil {
		s.obs = nil
		return
	}
	so := &serverObs{
		o:          o,
		reqDur:     o.Histogram("smartflux_kvnet_request_duration_seconds"),
		decodeErrs: o.Counter(`smartflux_kvnet_errors_total{kind="decode"}`),
		encodeErrs: o.Counter(`smartflux_kvnet_errors_total{kind="encode"}`),
		acceptErrs: o.Counter(`smartflux_kvnet_errors_total{kind="accept"}`),
		conns:      o.Counter("smartflux_kvnet_connections_total"),
	}
	for i := 1; i < opCount; i++ {
		so.requests[i] = o.Counter(fmt.Sprintf("smartflux_kvnet_requests_total{op=%q}", opName(op(i))))
	}
	s.obs = so
}

// SetErrorHandler registers a callback invoked (from the serving goroutines)
// with every asynchronous error the server hits: request decode failures,
// response encode failures and listener accept failures. Clean client
// disconnects (EOF, closed connections) are not errors. Call before Listen.
func (s *Server) SetErrorHandler(fn func(error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.errHandler = fn
}

// Err returns the first asynchronous serving error observed, or nil. It
// complements SetErrorHandler for callers that only need a post-hoc check
// (e.g. after Close).
func (s *Server) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.firstErr
}

// reportErr records an async error: first-error retention, the registered
// handler, the aggregate kind counter and a per-connection counter when a
// remote address is known.
func (s *Server) reportErr(kind *obs.Counter, remote string, err error) {
	kind.Inc()
	if so := s.obs; so != nil && remote != "" {
		so.o.Counter(fmt.Sprintf("smartflux_kvnet_conn_errors_total{remote=%q}", remote)).Inc()
	}
	s.mu.Lock()
	if s.firstErr == nil {
		s.firstErr = err
	}
	handler := s.errHandler
	s.mu.Unlock()
	if handler != nil {
		handler(err)
	}
}

// isClosed reports whether Close has begun.
func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serving happens on background goroutines; call
// Close to stop them.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("kvnet listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return "", errors.New("kvnet: server closed")
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) || s.isClosed() {
				return // listener closed by Close
			}
			// A failing listener is a real fault: surface it instead of
			// silently stopping the accept loop.
			var acceptErrs *obs.Counter
			if so := s.obs; so != nil {
				acceptErrs = so.acceptErrs
			}
			s.reportErr(acceptErrs, "", fmt.Errorf("kvnet accept: %w", err))
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		if so := s.obs; so != nil {
			so.conns.Inc()
		}

		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			_ = s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// serveConn answers one client connection until it closes. A clean
// disconnect (EOF between frames, or the server shutting the connection
// down) returns nil; decode and encode failures are reported through the
// error counters and handler, and returned.
func (s *Server) serveConn(conn net.Conn) error {
	// Close errors after a finished (or already failed) session are noise.
	defer func() { _ = conn.Close() }()
	remote := conn.RemoteAddr().String()
	so := s.obs
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || s.isClosed() {
				return nil // clean disconnect or server shutdown
			}
			// Truncated frame or garbage on the wire: a fault worth
			// surfacing, not a normal hang-up.
			var decodeErrs *obs.Counter
			if so != nil {
				decodeErrs = so.decodeErrs
			}
			err = fmt.Errorf("kvnet decode from %s: %w", remote, err)
			s.reportErr(decodeErrs, remote, err)
			return err
		}

		var start time.Time
		if so != nil {
			start = time.Now()
		}
		resp := s.handle(req)
		if so != nil {
			so.reqDur.Observe(time.Since(start).Seconds())
			i := int(req.Op)
			if i <= 0 || i >= opCount {
				i = 0
			}
			so.requests[i].Inc() // index 0 (unknown op) is a nil no-op
		}

		if err := enc.Encode(resp); err != nil {
			if errors.Is(err, net.ErrClosed) || s.isClosed() {
				return nil
			}
			var encodeErrs *obs.Counter
			if so != nil {
				encodeErrs = so.encodeErrs
			}
			err = fmt.Errorf("kvnet encode to %s: %w", remote, err)
			s.reportErr(encodeErrs, remote, err)
			return err
		}
	}
}

func (s *Server) handle(req request) response {
	switch req.Op {
	case opCreateTable:
		_, err := s.store.EnsureTable(req.Table, kvstore.TableOptions{MaxVersions: req.MaxVersions})
		return errResponse(err)
	case opPut:
		t, err := s.store.Table(req.Table)
		if err != nil {
			return errResponse(err)
		}
		return errResponse(t.Put(req.Row, req.Column, req.Value))
	case opGet:
		t, err := s.store.Table(req.Table)
		if err != nil {
			return errResponse(err)
		}
		v, found := t.Get(req.Row, req.Column)
		return response{Value: v, Found: found}
	case opDelete:
		t, err := s.store.Table(req.Table)
		if err != nil {
			return errResponse(err)
		}
		return errResponse(t.Delete(req.Row, req.Column))
	case opScan:
		t, err := s.store.Table(req.Table)
		if err != nil {
			return errResponse(err)
		}
		return response{Cells: t.Scan(req.Scan)}
	case opApply:
		t, err := s.store.Table(req.Table)
		if err != nil {
			return errResponse(err)
		}
		b := kvstore.NewBatch()
		for _, o := range req.Ops {
			if o.Delete {
				b.Delete(o.Row, o.Column)
			} else {
				b.Put(o.Row, o.Column, o.Value)
			}
		}
		return errResponse(t.Apply(b))
	default:
		return response{Err: fmt.Sprintf("kvnet: unknown op %d", req.Op)}
	}
}

func errResponse(err error) response {
	if err != nil {
		return response{Err: err.Error()}
	}
	return response{}
}

// Close stops the listener, closes live connections and waits for all
// serving goroutines to exit. It is safe to call multiple times.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.listener
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// ClientConfig configures a client connection. The zero value matches the
// historical behaviour: no deadlines anywhere.
type ClientConfig struct {
	// DialTimeout bounds connection establishment; zero waits forever.
	DialTimeout time.Duration
	// ReadTimeout bounds each response read; zero waits forever. A hung or
	// stalled server surfaces as a kvnet recv timeout error instead of
	// blocking the calling workflow step indefinitely.
	ReadTimeout time.Duration
	// WriteTimeout bounds each request write; zero waits forever.
	WriteTimeout time.Duration
	// Obs, when non-nil, counts I/O timeouts on
	// smartflux_kvnet_client_timeouts_total{kind="read"|"write"}.
	Obs *obs.Observer
}

// Client is a synchronous TCP client for a kvnet server. A Client is safe
// for concurrent use; requests are serialized over one connection.
type Client struct {
	cfg ClientConfig

	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder

	readTimeouts  *obs.Counter // nil when no observer is configured
	writeTimeouts *obs.Counter
}

// Dial connects to a kvnet server with no I/O deadlines.
func Dial(addr string) (*Client, error) {
	return DialConfig(addr, ClientConfig{})
}

// DialConfig connects to a kvnet server with the given configuration.
func DialConfig(addr string, cfg ClientConfig) (*Client, error) {
	var conn net.Conn
	var err error
	if cfg.DialTimeout > 0 {
		conn, err = net.DialTimeout("tcp", addr, cfg.DialTimeout)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, fmt.Errorf("kvnet dial: %w", err)
	}
	c := &Client{
		cfg:  cfg,
		conn: conn,
		enc:  gob.NewEncoder(conn),
		dec:  gob.NewDecoder(conn),
	}
	if cfg.Obs != nil {
		c.readTimeouts = cfg.Obs.Counter(`smartflux_kvnet_client_timeouts_total{kind="read"}`)
		c.writeTimeouts = cfg.Obs.Counter(`smartflux_kvnet_client_timeouts_total{kind="write"}`)
	}
	return c, nil
}

// Close closes the client connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// countTimeout bumps the matching timeout counter when err is a net timeout.
func countTimeout(err error, counter *obs.Counter) {
	if counter == nil {
		return
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		counter.Inc()
	}
}

func (c *Client) roundTrip(req request) (response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.WriteTimeout > 0 {
		_ = c.conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
	}
	if err := c.enc.Encode(req); err != nil {
		countTimeout(err, c.writeTimeouts)
		return response{}, fmt.Errorf("kvnet send: %w", err)
	}
	if c.cfg.ReadTimeout > 0 {
		_ = c.conn.SetReadDeadline(time.Now().Add(c.cfg.ReadTimeout))
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		countTimeout(err, c.readTimeouts)
		return response{}, fmt.Errorf("kvnet recv: %w", err)
	}
	if resp.Err != "" {
		return resp, errors.New(resp.Err)
	}
	return resp, nil
}

// CreateTable ensures a table exists on the server.
func (c *Client) CreateTable(name string, maxVersions int) error {
	_, err := c.roundTrip(request{Op: opCreateTable, Table: name, MaxVersions: maxVersions})
	return err
}

// Put writes a value.
func (c *Client) Put(table, row, column string, value []byte) error {
	_, err := c.roundTrip(request{Op: opPut, Table: table, Row: row, Column: column, Value: value})
	return err
}

// PutFloat writes an encoded float64.
func (c *Client) PutFloat(table, row, column string, v float64) error {
	return c.Put(table, row, column, kvstore.EncodeFloat(v))
}

// Get reads the latest value of a cell.
func (c *Client) Get(table, row, column string) ([]byte, bool, error) {
	resp, err := c.roundTrip(request{Op: opGet, Table: table, Row: row, Column: column})
	if err != nil {
		return nil, false, err
	}
	return resp.Value, resp.Found, nil
}

// GetFloat reads a float64-encoded cell.
func (c *Client) GetFloat(table, row, column string) (float64, bool, error) {
	raw, found, err := c.Get(table, row, column)
	if err != nil || !found {
		return 0, found, err
	}
	v, err := kvstore.DecodeFloat(raw)
	if err != nil {
		return 0, false, err
	}
	return v, true, nil
}

// Delete removes a cell.
func (c *Client) Delete(table, row, column string) error {
	_, err := c.roundTrip(request{Op: opDelete, Table: table, Row: row, Column: column})
	return err
}

// Scan returns matching cells.
func (c *Client) Scan(table string, opts kvstore.ScanOptions) ([]kvstore.Cell, error) {
	resp, err := c.roundTrip(request{Op: opScan, Table: table, Scan: opts})
	if err != nil {
		return nil, err
	}
	return resp.Cells, nil
}

// Apply applies a batch atomically on the server.
func (c *Client) Apply(table string, ops []kvstore.Op) error {
	_, err := c.roundTrip(request{Op: opApply, Table: table, Ops: ops})
	return err
}
