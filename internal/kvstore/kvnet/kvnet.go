// Package kvnet exposes a kvstore.Store over TCP so workflow steps running in
// separate processes can share data containers, mirroring the paper's setup
// where steps interact with a remote HBase cluster through (intercepted)
// client libraries.
//
// The wire protocol is a simple request/response stream of gob-encoded
// frames over one TCP connection per client. Every client request carries an
// Op tag; the server answers each request exactly once, in order.
//
// # Resilience
//
// The client survives transient transport failures when ClientConfig enables
// retries: each failed round trip tears the connection down, redials, and
// re-sends, with exponential backoff and seeded jitter between attempts.
// Reads (Get, Scan) are idempotent and always retryable; mutating ops (Put,
// Delete, Apply) are retryable because every one carries a (client, sequence)
// request ID that the server deduplicates — a retry of an op the server
// already applied returns the cached response instead of applying twice.
// CreateTable maps to EnsureTable server-side and is idempotent by
// construction. Application-level errors (a response with a non-empty Err)
// mean the op executed; they are returned immediately and never retried.
//
// The server drains gracefully on Close: in-flight requests finish and their
// responses are flushed within a bounded drain window before connections
// close, so a shutdown never chops a response mid-frame.
package kvnet

import (
	"crypto/rand"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"smartflux/internal/kvstore"
	"smartflux/internal/obs"
)

// Sentinel errors, matchable with errors.Is through every kvnet wrapper.
var (
	// ErrClosed reports an operation on a client whose Close has begun. It
	// replaces the raw net/gob errors a concurrent Close used to surface.
	ErrClosed = errors.New("kvnet: client closed")
	// ErrTimeout reports an I/O deadline expiring on a round trip. The
	// original net.Error remains reachable via errors.As.
	ErrTimeout = errors.New("kvnet: i/o timeout")
)

// op identifies the request type.
type op int

const (
	opCreateTable op = iota + 1
	opPut
	opGet
	opDelete
	opScan
	opApply

	opCount = int(opApply) + 1
)

// opName names each request type for metric labels.
func opName(o op) string {
	switch o {
	case opCreateTable:
		return "create_table"
	case opPut:
		return "put"
	case opGet:
		return "get"
	case opDelete:
		return "delete"
	case opScan:
		return "scan"
	case opApply:
		return "apply"
	default:
		return "unknown"
	}
}

// mutatingOp reports whether o changes store state in a non-idempotent way.
// These ops carry request IDs and are deduplicated server-side so client
// retries stay exactly-once. CreateTable is excluded: it maps to EnsureTable
// and re-applying it is a no-op.
func mutatingOp(o op) bool {
	return o == opPut || o == opDelete || o == opApply
}

// request is the client → server frame.
type request struct {
	Op          op
	Table       string
	Row         string
	Column      string
	Value       []byte
	MaxVersions int
	Scan        kvstore.ScanOptions
	Ops         []kvstore.Op

	// ClientID and Seq form the idempotency key of mutating requests: Seq
	// increases per mutating op of one client, and the server remembers the
	// last (Seq, response) per ClientID. Zero values disable deduplication.
	ClientID uint64
	Seq      uint64
}

// response is the server → client frame.
type response struct {
	Err   string
	Value []byte
	Found bool
	Cells []kvstore.Cell
}

// DefaultDrainTimeout bounds how long Server.Close lets in-flight responses
// flush before forcing connections down.
const DefaultDrainTimeout = time.Second

// Server serves a Store over TCP.
type Server struct {
	store *kvstore.Store

	mu         sync.Mutex
	listener   net.Listener
	conns      map[net.Conn]struct{}
	wg         sync.WaitGroup
	closed     bool
	drain      time.Duration
	firstErr   error // first async serving error (decode/encode/accept)
	errHandler func(error)

	// dedup remembers the last mutating request and its response per
	// client, keyed by ClientID — the server half of exactly-once retries.
	// One entry per client ever seen; clients are per-step processes, so
	// the map stays small.
	dedupMu sync.Mutex
	dedup   map[uint64]dedupEntry

	obs *serverObs
}

// dedupEntry caches one client's latest applied mutating request.
type dedupEntry struct {
	seq  uint64
	resp response
}

// serverObs carries the server's pre-resolved instruments.
type serverObs struct {
	o          *obs.Observer
	requests   [opCount]*obs.Counter
	reqDur     *obs.Histogram
	decodeErrs *obs.Counter
	encodeErrs *obs.Counter
	acceptErrs *obs.Counter
	conns      *obs.Counter
	dedupHits  *obs.Counter
}

// NewServer creates a server for the given store with the default graceful
// drain window.
func NewServer(store *kvstore.Store) *Server {
	return &Server{
		store: store,
		conns: make(map[net.Conn]struct{}),
		drain: DefaultDrainTimeout,
		dedup: make(map[uint64]dedupEntry),
	}
}

// SetDrainTimeout adjusts how long Close waits for in-flight responses to
// flush. Zero (or negative) disables draining: Close tears connections down
// immediately. Call before Close.
func (s *Server) SetDrainTimeout(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drain = d
}

// Instrument attaches an observer to the server: per-op request counters, a
// request-latency histogram, connection counts, retry-dedup hits, and
// decode/encode/accept error counters (plus a per-connection error counter
// labeled by remote address). Call before Listen; passing nil detaches.
func (s *Server) Instrument(o *obs.Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if o == nil {
		s.obs = nil
		return
	}
	so := &serverObs{
		o:          o,
		reqDur:     o.Histogram("smartflux_kvnet_request_duration_seconds"),
		decodeErrs: o.Counter(`smartflux_kvnet_errors_total{kind="decode"}`),
		encodeErrs: o.Counter(`smartflux_kvnet_errors_total{kind="encode"}`),
		acceptErrs: o.Counter(`smartflux_kvnet_errors_total{kind="accept"}`),
		conns:      o.Counter("smartflux_kvnet_connections_total"),
		dedupHits:  o.Counter("smartflux_kvnet_dedup_hits_total"),
	}
	for i := 1; i < opCount; i++ {
		so.requests[i] = o.Counter(fmt.Sprintf("smartflux_kvnet_requests_total{op=%q}", opName(op(i))))
	}
	s.obs = so
}

// SetErrorHandler registers a callback invoked (from the serving goroutines)
// with every asynchronous error the server hits: request decode failures,
// response encode failures and listener accept failures. Clean client
// disconnects (EOF, resets, closed connections) are not errors. Call before
// Listen.
func (s *Server) SetErrorHandler(fn func(error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.errHandler = fn
}

// Err returns the first asynchronous serving error observed, or nil. It
// complements SetErrorHandler for callers that only need a post-hoc check
// (e.g. after Close).
func (s *Server) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.firstErr
}

// reportErr records an async error: first-error retention, the registered
// handler, the aggregate kind counter and a per-connection counter when a
// remote address is known.
func (s *Server) reportErr(kind *obs.Counter, remote string, err error) {
	kind.Inc()
	if so := s.obs; so != nil && remote != "" {
		so.o.Counter(fmt.Sprintf("smartflux_kvnet_conn_errors_total{remote=%q}", remote)).Inc()
	}
	s.mu.Lock()
	if s.firstErr == nil {
		s.firstErr = err
	}
	handler := s.errHandler
	s.mu.Unlock()
	if handler != nil {
		handler(err)
	}
}

// isClosed reports whether Close has begun.
func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serving happens on background goroutines; call
// Close to stop them.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("kvnet listen: %w", err)
	}
	return s.ServeListener(ln)
}

// ServeListener starts accepting connections on an already-bound listener —
// the interposition point for fault-injecting wrappers (internal/fault's
// WrapListener) and custom transports. The server takes ownership of ln and
// returns its address.
func (s *Server) ServeListener(ln net.Listener) (string, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return "", errors.New("kvnet: server closed")
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) || s.isClosed() {
				return // listener closed by Close
			}
			// A failing listener is a real fault: surface it instead of
			// silently stopping the accept loop.
			var acceptErrs *obs.Counter
			if so := s.obs; so != nil {
				acceptErrs = so.acceptErrs
			}
			s.reportErr(acceptErrs, "", fmt.Errorf("kvnet accept: %w", err))
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		if so := s.obs; so != nil {
			so.conns.Inc()
		}

		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			_ = s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// cleanDisconnect reports whether a connection error is a normal client
// departure rather than a protocol fault: EOF between frames, a reset or
// broken pipe from an abruptly killed client, or our own shutdown. A
// mid-frame EOF (io.ErrUnexpectedEOF) is deliberately NOT clean — a
// truncated frame is indistinguishable from corrupt data and stays
// observable through the decode-error counter and handler.
func cleanDisconnect(err error) bool {
	return errors.Is(err, io.EOF) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE)
}

// serveConn answers one client connection until it closes. A clean
// disconnect (EOF or reset between or inside frames — killed clients are
// routine under connection churn — or the server shutting down) returns nil;
// other decode and encode failures are reported through the error counters
// and handler, and returned.
func (s *Server) serveConn(conn net.Conn) error {
	// Close errors after a finished (or already failed) session are noise.
	defer func() { _ = conn.Close() }()
	remote := conn.RemoteAddr().String()
	so := s.obs
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			if cleanDisconnect(err) || s.isClosed() {
				return nil // clean disconnect or server shutdown
			}
			// Garbage on the wire: a fault worth surfacing, not a normal
			// hang-up.
			var decodeErrs *obs.Counter
			if so != nil {
				decodeErrs = so.decodeErrs
			}
			err = fmt.Errorf("kvnet decode from %s: %w", remote, err)
			s.reportErr(decodeErrs, remote, err)
			return err
		}

		var start time.Time
		if so != nil {
			start = time.Now()
		}
		resp := s.handle(req)
		if so != nil {
			so.reqDur.Observe(time.Since(start).Seconds())
			i := int(req.Op)
			if i <= 0 || i >= opCount {
				i = 0
			}
			so.requests[i].Inc() // index 0 (unknown op) is a nil no-op
		}

		if err := enc.Encode(resp); err != nil {
			if cleanDisconnect(err) || s.isClosed() {
				return nil
			}
			var encodeErrs *obs.Counter
			if so != nil {
				encodeErrs = so.encodeErrs
			}
			err = fmt.Errorf("kvnet encode to %s: %w", remote, err)
			s.reportErr(encodeErrs, remote, err)
			return err
		}
	}
}

// handle answers one request, routing mutating requests through the
// idempotency cache: a retry of the client's most recent mutating op
// returns the remembered response instead of applying twice.
func (s *Server) handle(req request) response {
	if req.ClientID == 0 || req.Seq == 0 || !mutatingOp(req.Op) {
		return s.dispatch(req)
	}
	s.dedupMu.Lock()
	if e, ok := s.dedup[req.ClientID]; ok && e.seq == req.Seq {
		s.dedupMu.Unlock()
		if so := s.obs; so != nil {
			so.dedupHits.Inc()
		}
		return e.resp
	}
	s.dedupMu.Unlock()
	resp := s.dispatch(req)
	s.dedupMu.Lock()
	s.dedup[req.ClientID] = dedupEntry{seq: req.Seq, resp: resp}
	s.dedupMu.Unlock()
	return resp
}

// dispatch applies one request to the store.
func (s *Server) dispatch(req request) response {
	switch req.Op {
	case opCreateTable:
		_, err := s.store.EnsureTable(req.Table, kvstore.TableOptions{MaxVersions: req.MaxVersions})
		return errResponse(err)
	case opPut:
		t, err := s.store.Table(req.Table)
		if err != nil {
			return errResponse(err)
		}
		return errResponse(t.Put(req.Row, req.Column, req.Value))
	case opGet:
		t, err := s.store.Table(req.Table)
		if err != nil {
			return errResponse(err)
		}
		v, found := t.Get(req.Row, req.Column)
		return response{Value: v, Found: found}
	case opDelete:
		t, err := s.store.Table(req.Table)
		if err != nil {
			return errResponse(err)
		}
		return errResponse(t.Delete(req.Row, req.Column))
	case opScan:
		t, err := s.store.Table(req.Table)
		if err != nil {
			return errResponse(err)
		}
		return response{Cells: t.Scan(req.Scan)}
	case opApply:
		t, err := s.store.Table(req.Table)
		if err != nil {
			return errResponse(err)
		}
		b := kvstore.NewBatch()
		for _, o := range req.Ops {
			if o.Delete {
				b.Delete(o.Row, o.Column)
			} else {
				b.Put(o.Row, o.Column, o.Value)
			}
		}
		return errResponse(t.Apply(b))
	default:
		return response{Err: fmt.Sprintf("kvnet: unknown op %d", req.Op)}
	}
}

func errResponse(err error) response {
	if err != nil {
		return response{Err: err.Error()}
	}
	return response{}
}

// Close stops the listener, drains live connections and waits for all
// serving goroutines to exit. With a positive drain window (the default),
// idle connections wake and close immediately while in-flight requests get
// up to the window to flush their response; a zero window closes
// connections outright. Close is idempotent and safe to call concurrently.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.listener
	// Deadline calls never block, so draining the live connections directly
	// under the lock is safe and keeps the set consistent with serveConn's
	// removals.
	now := time.Now()
	for conn := range s.conns {
		if s.drain > 0 {
			// Wake decodes blocked between frames right away; give writes
			// of already-accepted requests the drain window to flush.
			_ = conn.SetReadDeadline(now)
			_ = conn.SetWriteDeadline(now.Add(s.drain))
		} else {
			_ = conn.Close()
		}
	}
	s.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// ClientConfig configures a client connection. The zero value matches the
// historical behaviour: no deadlines, no retries, no reconnection.
type ClientConfig struct {
	// DialTimeout bounds connection establishment; zero waits forever.
	DialTimeout time.Duration
	// ReadTimeout bounds each response read; zero waits forever. A hung or
	// stalled server surfaces as an ErrTimeout-wrapped kvnet recv error
	// instead of blocking the calling workflow step indefinitely.
	ReadTimeout time.Duration
	// WriteTimeout bounds each request write; zero waits forever.
	WriteTimeout time.Duration
	// MaxRetries bounds the extra attempts a failed round trip gets. Every
	// retry tears down and redials the connection. Reads retry as-is;
	// mutating ops retry under their request ID so the server applies them
	// exactly once.
	MaxRetries int
	// RetryBackoff is the base delay before a retry, doubling each attempt
	// (capped at 64×) with seeded jitter of up to half the delay. Zero
	// retries immediately.
	RetryBackoff time.Duration
	// RetrySeed seeds the jitter source; retries are deterministic given
	// the seed and the failure sequence.
	RetrySeed int64
	// Dial overrides connection establishment (e.g. to interpose
	// internal/fault's Dialer); nil dials TCP with DialTimeout.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// Obs, when non-nil, counts I/O timeouts on
	// smartflux_kvnet_client_timeouts_total{kind="read"|"write"}, retries
	// on smartflux_kvnet_client_retries_total and reconnections on
	// smartflux_kvnet_client_reconnects_total.
	Obs *obs.Observer
}

// Client is a synchronous TCP client for a kvnet server. A Client is safe
// for concurrent use; requests are serialized over one connection. With
// retries configured it transparently reconnects after transport failures.
type Client struct {
	cfg  ClientConfig
	addr string
	id   uint64 // idempotency identity, stable across reconnects

	// opMu serializes round trips (and owns enc/dec, seq, rtSeq and the
	// jitter RNG); connMu guards connection state so Close can interrupt an
	// in-flight round trip without waiting for it.
	opMu   sync.Mutex
	seq    uint64
	rtSeq  uint64 // numbers round-trip spans under root
	jitter *mrand.Rand

	// root anchors this client's round-trip spans under one unemitted
	// net/c<n> ID; nil when the observer is not tracing spans.
	root *obs.Span

	connMu sync.Mutex
	conn   net.Conn
	enc    *gob.Encoder
	dec    *gob.Decoder
	closed bool

	readTimeouts  *obs.Counter // nil when no observer is configured
	writeTimeouts *obs.Counter
	retries       *obs.Counter
	reconnects    *obs.Counter
}

// clientIDCounter is the fallback identity source when crypto/rand fails.
var clientIDCounter atomic.Uint64

// clientSpanSeq numbers span-tracing clients process-wide so their root span
// IDs (net/c0, net/c1, ...) stay distinct when several clients share sinks.
var clientSpanSeq atomic.Uint64

// newClientID draws a non-zero 64-bit client identity. Identities only need
// to be unique among clients of one server; randomness keeps identities from
// colliding across processes without coordination.
func newClientID() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		var id uint64
		for _, x := range b {
			id = id<<8 | uint64(x)
		}
		if id != 0 {
			return id
		}
	}
	return clientIDCounter.Add(1)
}

// Dial connects to a kvnet server with no I/O deadlines and no retries.
func Dial(addr string) (*Client, error) {
	return DialConfig(addr, ClientConfig{})
}

// DialConfig connects to a kvnet server with the given configuration.
func DialConfig(addr string, cfg ClientConfig) (*Client, error) {
	c := &Client{
		cfg:    cfg,
		addr:   addr,
		id:     newClientID(),
		jitter: mrand.New(mrand.NewSource(cfg.RetrySeed)),
	}
	if cfg.Obs != nil {
		c.readTimeouts = cfg.Obs.Counter(`smartflux_kvnet_client_timeouts_total{kind="read"}`)
		c.writeTimeouts = cfg.Obs.Counter(`smartflux_kvnet_client_timeouts_total{kind="write"}`)
		c.retries = cfg.Obs.Counter("smartflux_kvnet_client_retries_total")
		c.reconnects = cfg.Obs.Counter("smartflux_kvnet_client_reconnects_total")
	}
	if cfg.Obs.Spanning() {
		idx := clientSpanSeq.Add(1) - 1
		c.root = cfg.Obs.RootSpan("net/c"+strconv.FormatUint(idx, 10), "client", "net")
	}
	// Eager first dial so an unreachable server fails construction, as it
	// always has.
	c.connMu.Lock()
	_, _, _, err := c.ensureConnLocked(false)
	c.connMu.Unlock()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// dialConn establishes one connection using the configured dial function.
func (c *Client) dialConn() (net.Conn, error) {
	if c.cfg.Dial != nil {
		return c.cfg.Dial(c.addr, c.cfg.DialTimeout)
	}
	if c.cfg.DialTimeout > 0 {
		return net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	}
	return net.Dial("tcp", c.addr)
}

// ensureConnLocked returns the live connection, dialing a fresh one if
// needed. Callers hold connMu. redial marks reconnections (vs. the first
// dial) for the reconnect counter.
func (c *Client) ensureConnLocked(redial bool) (net.Conn, *gob.Encoder, *gob.Decoder, error) {
	if c.closed {
		return nil, nil, nil, &opError{stage: "dial", kind: ErrClosed}
	}
	if c.conn != nil {
		return c.conn, c.enc, c.dec, nil
	}
	conn, err := c.dialConn()
	if err != nil {
		return nil, nil, nil, &opError{stage: "dial", err: err}
	}
	c.conn = conn
	c.enc = gob.NewEncoder(conn)
	c.dec = gob.NewDecoder(conn)
	if redial {
		c.reconnects.Inc() // nil-safe no-op when uninstrumented
	}
	return conn, c.enc, c.dec, nil
}

// dropConn tears the current connection down so the next attempt redials.
// The client's identity (and thus the dedup key space) survives.
func (c *Client) dropConn() {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
		c.enc = nil
		c.dec = nil
	}
}

// isClosed reports whether Close has begun.
func (c *Client) isClosed() bool {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.closed
}

// Close closes the client. It is idempotent, safe to call concurrently with
// in-flight operations — those fail promptly with ErrClosed instead of a
// raw transport error — and returns nil on repeat calls.
func (c *Client) Close() error {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close() // unblocks any in-flight read/write immediately
	c.conn = nil
	c.enc = nil
	c.dec = nil
	return err
}

// opError wraps a transport failure with its sentinel classification. Both
// the sentinel (ErrClosed / ErrTimeout) and the underlying error stay
// reachable through errors.Is / errors.As.
type opError struct {
	stage string // "dial", "send", "recv"
	kind  error  // ErrClosed or ErrTimeout; nil for plain transport errors
	err   error
}

func (e *opError) Error() string {
	switch {
	case e.kind != nil && e.err != nil:
		return fmt.Sprintf("kvnet %s: %v: %v", e.stage, e.kind, e.err)
	case e.kind != nil:
		return fmt.Sprintf("kvnet %s: %v", e.stage, e.kind)
	default:
		return fmt.Sprintf("kvnet %s: %v", e.stage, e.err)
	}
}

func (e *opError) Unwrap() []error {
	switch {
	case e.kind != nil && e.err != nil:
		return []error{e.kind, e.err}
	case e.kind != nil:
		return []error{e.kind}
	default:
		return []error{e.err}
	}
}

// wrapIOErr classifies one send/recv failure: concurrent Close becomes
// ErrClosed, net timeouts become ErrTimeout (counted), everything else
// passes through wrapped with its stage.
func (c *Client) wrapIOErr(stage string, err error, timeouts *obs.Counter) error {
	if c.isClosed() {
		return &opError{stage: stage, kind: ErrClosed, err: err}
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		timeouts.Inc() // nil-safe no-op when uninstrumented
		return &opError{stage: stage, kind: ErrTimeout, err: err}
	}
	return &opError{stage: stage, err: err}
}

// retryable reports whether a failed request may be re-sent: reads and
// idempotent ops always, mutating ops only under a request ID the server
// deduplicates (always assigned — the check documents the invariant).
func (c *Client) retryable(req request) bool {
	if !mutatingOp(req.Op) {
		return true
	}
	return req.ClientID != 0 && req.Seq != 0
}

// backoff sleeps out the delay before retry number attempt (0-based):
// RetryBackoff doubling per attempt, capped at 64×, plus jitter of up to
// half the delay drawn from the seeded source.
func (c *Client) backoff(attempt int) {
	base := c.cfg.RetryBackoff
	if base <= 0 {
		return
	}
	if attempt > 6 {
		attempt = 6
	}
	d := base << uint(attempt)
	d += time.Duration(c.jitter.Int63n(int64(d)/2 + 1))
	time.Sleep(d)
}

// attempt performs one wire round trip. att, when non-nil, is the span for
// this attempt; a dial child hangs off it when the connection must be
// (re)established.
func (c *Client) attempt(req request, redial bool, att *obs.Span) (response, error) {
	c.connMu.Lock()
	var dialSp *obs.Span
	if c.conn == nil && att != nil {
		dialSp = att.ChildKey("dial", "dial", "net")
	}
	conn, enc, dec, err := c.ensureConnLocked(redial)
	c.connMu.Unlock()
	dialSp.EndErr(err)
	if err != nil {
		return response{}, err
	}
	if c.cfg.WriteTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
	}
	if err := enc.Encode(req); err != nil {
		return response{}, c.wrapIOErr("send", err, c.writeTimeouts)
	}
	if c.cfg.ReadTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(c.cfg.ReadTimeout))
	}
	var resp response
	if err := dec.Decode(&resp); err != nil {
		return response{}, c.wrapIOErr("recv", err, c.readTimeouts)
	}
	return resp, nil
}

// roundTrip sends one request and returns its response, retrying through
// reconnects per the configured policy. Application-level errors (non-empty
// response.Err) mean the op executed server-side; they are returned
// immediately and never retried.
func (c *Client) roundTrip(req request) (response, error) {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	if mutatingOp(req.Op) {
		c.seq++
		req.ClientID, req.Seq = c.id, c.seq
	}
	var sp *obs.Span
	if c.root != nil {
		sp = c.root.ChildKey("rt"+strconv.FormatUint(c.rtSeq, 10), opName(req.Op), "net")
		c.rtSeq++
		if req.Table != "" {
			sp.SetAttr("table", req.Table)
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		var att *obs.Span
		if sp != nil {
			att = sp.ChildKey("a"+strconv.Itoa(attempt), "attempt", "net")
		}
		resp, err := c.attempt(req, attempt > 0, att)
		att.EndErr(err)
		if err == nil {
			if resp.Err != "" {
				appErr := errors.New(resp.Err)
				sp.SetRetries(attempt)
				sp.EndErr(appErr)
				return resp, appErr
			}
			if sp != nil {
				sp.SetRetries(attempt)
				sp.SetBytes(wireBytes(req, resp))
				sp.End()
			}
			return resp, nil
		}
		lastErr = err
		if errors.Is(err, ErrClosed) {
			sp.SetRetries(attempt)
			sp.EndErr(err)
			return response{}, err
		}
		c.dropConn()
		if attempt >= c.cfg.MaxRetries || !c.retryable(req) {
			sp.SetRetries(attempt)
			sp.EndErr(lastErr)
			return response{}, lastErr
		}
		c.retries.Inc() // nil-safe no-op when uninstrumented
		c.backoff(attempt)
	}
}

// wireBytes approximates the payload bytes a round trip moved: request and
// response values, batched op values, and scanned cell values. Framing and
// gob overhead are excluded.
func wireBytes(req request, resp response) int64 {
	n := int64(len(req.Value)) + int64(len(resp.Value))
	for _, op := range req.Ops {
		n += int64(len(op.Value))
	}
	for _, cell := range resp.Cells {
		n += int64(len(cell.Version.Value))
	}
	return n
}

// CreateTable ensures a table exists on the server.
func (c *Client) CreateTable(name string, maxVersions int) error {
	_, err := c.roundTrip(request{Op: opCreateTable, Table: name, MaxVersions: maxVersions})
	return err
}

// Put writes a value.
func (c *Client) Put(table, row, column string, value []byte) error {
	_, err := c.roundTrip(request{Op: opPut, Table: table, Row: row, Column: column, Value: value})
	return err
}

// PutFloat writes an encoded float64.
func (c *Client) PutFloat(table, row, column string, v float64) error {
	return c.Put(table, row, column, kvstore.EncodeFloat(v))
}

// Get reads the latest value of a cell.
func (c *Client) Get(table, row, column string) ([]byte, bool, error) {
	resp, err := c.roundTrip(request{Op: opGet, Table: table, Row: row, Column: column})
	if err != nil {
		return nil, false, err
	}
	return resp.Value, resp.Found, nil
}

// GetFloat reads a float64-encoded cell.
func (c *Client) GetFloat(table, row, column string) (float64, bool, error) {
	raw, found, err := c.Get(table, row, column)
	if err != nil || !found {
		return 0, found, err
	}
	v, err := kvstore.DecodeFloat(raw)
	if err != nil {
		return 0, false, err
	}
	return v, true, nil
}

// Delete removes a cell.
func (c *Client) Delete(table, row, column string) error {
	_, err := c.roundTrip(request{Op: opDelete, Table: table, Row: row, Column: column})
	return err
}

// Scan returns matching cells.
func (c *Client) Scan(table string, opts kvstore.ScanOptions) ([]kvstore.Cell, error) {
	resp, err := c.roundTrip(request{Op: opScan, Table: table, Scan: opts})
	if err != nil {
		return nil, err
	}
	return resp.Cells, nil
}

// Apply applies a batch atomically on the server.
func (c *Client) Apply(table string, ops []kvstore.Op) error {
	_, err := c.roundTrip(request{Op: opApply, Table: table, Ops: ops})
	return err
}
