package kvnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"smartflux/internal/fault"
	"smartflux/internal/kvstore"
	"smartflux/internal/kvstore/wire"
	"smartflux/internal/obs"
)

// TestClientPipelinesConcurrentOps runs many concurrent ops through one
// client: all must succeed over a single connection, and the client's and
// server's exact on-wire byte counters must mirror each other.
func TestClientPipelinesConcurrentOps(t *testing.T) {
	store := kvstore.New()
	if _, err := store.EnsureTable("t", kvstore.TableOptions{}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	reg := obs.NewRegistry()
	srv.Instrument(obs.New(reg))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	creg := obs.NewRegistry()
	client, err := DialConfig(addr, ClientConfig{Obs: obs.New(creg)})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 32
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			row := fmt.Sprintf("r%02d", w)
			if err := client.Put("t", row, "c", []byte(row)); err != nil {
				errs[w] = err
				return
			}
			v, ok, err := client.Get("t", row, "c")
			if err != nil || !ok || string(v) != row {
				errs[w] = fmt.Errorf("get %s = %q, %v, %v", row, v, ok, err)
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", w, err)
		}
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["smartflux_kvnet_connections_total"]; got != 1 {
		t.Errorf("connections = %d, want 1 (all ops pipelined on one conn)", got)
	}
	csnap := creg.Snapshot()
	sent := csnap.Counters[`smartflux_kvnet_client_bytes_total{dir="sent"}`]
	recv := csnap.Counters[`smartflux_kvnet_client_bytes_total{dir="recv"}`]
	srvRecv := snap.Counters[`smartflux_kvnet_bytes_total{dir="recv"}`]
	srvSent := snap.Counters[`smartflux_kvnet_bytes_total{dir="sent"}`]
	if sent == 0 || recv == 0 {
		t.Fatalf("client byte counters empty: sent=%d recv=%d", sent, recv)
	}
	if sent != srvRecv {
		t.Errorf("client sent %d bytes, server received %d — exact accounting out of sync", sent, srvRecv)
	}
	if recv != srvSent {
		t.Errorf("client received %d bytes, server sent %d — exact accounting out of sync", recv, srvSent)
	}
}

// slowFirstWriteConn delays the connection's first write so pending ops
// pile up behind it and the writer's next flush has a batch to merge.
type slowFirstWriteConn struct {
	net.Conn
	once  sync.Once
	delay time.Duration
}

func (c *slowFirstWriteConn) Write(b []byte) (int, error) {
	c.once.Do(func() { time.Sleep(c.delay) })
	return c.Conn.Write(b)
}

// TestClientBatchesAdjacentPuts checks Put micro-batching: Puts issued
// while the writer is stalled coalesce into OpApply frames server-side
// while remaining individually observable client-side.
func TestClientBatchesAdjacentPuts(t *testing.T) {
	store := kvstore.New()
	if _, err := store.EnsureTable("t", kvstore.TableOptions{}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	reg := obs.NewRegistry()
	srv.Instrument(obs.New(reg))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := DialConfig(addr, ClientConfig{
		Dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			// The stalled first write is the hello preamble: every Put
			// below lands in the queue before the writer's next flush.
			return &slowFirstWriteConn{Conn: conn, delay: 100 * time.Millisecond}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const puts = 16
	var wg sync.WaitGroup
	errs := make([]error, puts)
	for i := 0; i < puts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			row := fmt.Sprintf("r%02d", i)
			errs[i] = client.Put("t", row, "c", []byte(row))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	boot, err := store.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	cells := boot.Scan(kvstore.ScanOptions{})
	if len(cells) != puts {
		t.Fatalf("store holds %d cells, want %d", len(cells), puts)
	}
	snap := reg.Snapshot()
	applies := snap.Counters[`smartflux_kvnet_requests_total{op="apply"}`]
	singles := snap.Counters[`smartflux_kvnet_requests_total{op="put"}`]
	if applies == 0 {
		t.Errorf("apply frames = 0 (puts %d): no micro-batching happened", singles)
	}
	if singles+applies >= puts {
		t.Errorf("server saw %d put + %d apply frames for %d Puts: batching saved nothing", singles, applies, puts)
	}
}

// TestStreamingScanLargeResult scans a result set far larger than one chunk
// (wire.ScanChunkCells): the client must reassemble all chunks in key order
// with intact values.
func TestStreamingScanLargeResult(t *testing.T) {
	store := kvstore.New()
	boot, err := store.EnsureTable("t", kvstore.TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const rows = 3*wire.ScanChunkCells + 17
	batch := kvstore.NewBatch()
	for i := 0; i < rows; i++ {
		batch.Put(fmt.Sprintf("r%06d", i), "c", []byte(fmt.Sprintf("value-%06d", i)))
	}
	if err := boot.Apply(batch); err != nil {
		t.Fatal(err)
	}

	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	cells, err := client.Scan("t", kvstore.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != rows {
		t.Fatalf("scan returned %d cells, want %d", len(cells), rows)
	}
	for i, c := range cells {
		if want := fmt.Sprintf("r%06d", i); c.Row != want {
			t.Fatalf("cell %d out of order: row %q, want %q", i, c.Row, want)
		}
		if want := fmt.Sprintf("value-%06d", i); string(c.Version.Value) != want {
			t.Fatalf("cell %d value %q, want %q", i, c.Version.Value, want)
		}
	}

	// Limits must hold across chunk boundaries too.
	limited, err := client.Scan("t", kvstore.ScanOptions{Limit: wire.ScanChunkCells + 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != wire.ScanChunkCells+3 {
		t.Errorf("limited scan returned %d cells, want %d", len(limited), wire.ScanChunkCells+3)
	}
}

// TestRetryChargesFrames is the timeout-during-pipelined-read regression
// test: with several ops in flight against a server that never answers,
// every epoch failure must charge every in-flight frame exactly once, with
// deterministic retry/timeout/reconnect accounting.
func TestRetryChargesFrames(t *testing.T) {
	addr := silentListener(t)
	reg := obs.NewRegistry()
	const maxRetries = 2
	client, err := DialConfig(addr, ClientConfig{
		DialTimeout:  time.Second,
		ReadTimeout:  150 * time.Millisecond,
		MaxRetries:   maxRetries,
		RetryBackoff: time.Millisecond,
		Obs:          obs.New(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const gets = 3
	var wg sync.WaitGroup
	errs := make([]error, gets)
	for i := 0; i < gets; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = client.Get("t", "r", fmt.Sprintf("c%d", i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("get %d error = %v, want ErrTimeout", i, err)
		}
	}

	snap := reg.Snapshot()
	// One read-timeout per dead epoch: the initial attempt plus maxRetries
	// redials, each carrying all gets frames.
	if got, want := snap.Counters[`smartflux_kvnet_client_timeouts_total{kind="read"}`], uint64(maxRetries+1); got != want {
		t.Errorf("read timeouts = %d, want %d", got, want)
	}
	if got, want := snap.Counters["smartflux_kvnet_client_retries_total"], uint64(gets*maxRetries); got != want {
		t.Errorf("retries = %d, want %d (every in-flight frame charged per epoch)", got, want)
	}
	if got, want := snap.Counters["smartflux_kvnet_client_reconnects_total"], uint64(maxRetries); got != want {
		t.Errorf("reconnects = %d, want %d", got, want)
	}
}

// answerOnePerConn accepts connections and answers exactly one request
// frame each, swallowing the rest — a server whose pipelines always stall
// partway through.
func answerOnePerConn(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			defer conn.Close()
			buf := wire.GetBuffer()
			defer buf.Release()
			out := wire.GetBuffer()
			defer out.Release()
			answered := false
			for {
				h, payload, err := wire.ReadFrame(conn, buf)
				if err != nil {
					return
				}
				req, err := wire.DecodeRequest(h, payload)
				if err != nil || req.Op == wire.OpHello || answered {
					if err != nil {
						return
					}
					continue
				}
				answered = true
				out.Reset()
				wire.AppendGetResponse(out, req.Seq, []byte("v"), true)
				if _, err := conn.Write(out.Bytes()); err != nil {
					return
				}
			}
		}(conn)
	}
}

// TestPipelinedPartialResponseRetry pins the mid-pipeline failure contract:
// when a connection dies after answering only part of the pipeline, the
// answered op completes, the stranded ops retry on a fresh connection, and
// the read deadline re-arms per delivered response.
func TestPipelinedPartialResponseRetry(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go answerOnePerConn(ln)

	reg := obs.NewRegistry()
	client, err := DialConfig(ln.Addr().String(), ClientConfig{
		DialTimeout:  time.Second,
		ReadTimeout:  150 * time.Millisecond,
		MaxRetries:   5,
		RetryBackoff: time.Millisecond,
		Obs:          obs.New(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const gets = 3
	var wg sync.WaitGroup
	errs := make([]error, gets)
	for i := 0; i < gets; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, ok, err := client.Get("t", "r", fmt.Sprintf("c%d", i))
			if err != nil {
				errs[i] = err
			} else if !ok || string(v) != "v" {
				errs[i] = fmt.Errorf("got %q, %v", v, ok)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("get %d: %v", i, err)
		}
	}
	snap := reg.Snapshot()
	// One answer per connection: finishing all gets takes gets-1 redials.
	if got, want := snap.Counters["smartflux_kvnet_client_reconnects_total"], uint64(gets-1); got != want {
		t.Errorf("reconnects = %d, want %d", got, want)
	}
	if got := snap.Counters["smartflux_kvnet_client_retries_total"]; got < gets-1 {
		t.Errorf("retries = %d, want >= %d", got, gets-1)
	}
}

// TestIdleReadDeadlineDisarms checks that a configured read deadline only
// guards in-flight frames: an idle gap far longer than the deadline must
// not produce timeouts or kill the connection.
func TestIdleReadDeadlineDisarms(t *testing.T) {
	store := kvstore.New()
	if _, err := store.EnsureTable("t", kvstore.TableOptions{}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reg := obs.NewRegistry()
	client, err := DialConfig(addr, ClientConfig{
		ReadTimeout: 100 * time.Millisecond,
		Obs:         obs.New(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.Put("t", "r", "c", []byte("x")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // idle well past the read deadline
	if _, ok, err := client.Get("t", "r", "c"); err != nil || !ok {
		t.Fatalf("get after idle gap: %v, %v", ok, err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[`smartflux_kvnet_client_timeouts_total{kind="read"}`]; got != 0 {
		t.Errorf("idle gap produced %d read timeouts, want 0", got)
	}
	if got := snap.Counters["smartflux_kvnet_client_reconnects_total"]; got != 0 {
		t.Errorf("idle gap produced %d reconnects, want 0", got)
	}
}

// TestExactlyOncePipelinedDisconnects floods a faulty connection with
// concurrent mutating ops until the injector has killed it mid-pipeline a
// few times: every Put must succeed exactly once (one version per cell)
// even though retried frames may re-send mutations the server already
// applied.
func TestExactlyOncePipelinedDisconnects(t *testing.T) {
	store := kvstore.New()
	if _, err := store.EnsureTable("t", kvstore.TableOptions{}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	inj := fault.New(fault.Policy{
		Seed:           99,
		DisconnectRate: 0.12,
		LatencyRate:    0.2,
		Latency:        200 * time.Microsecond,
	})
	cfg := retryCfg(99)
	cfg.Dial = fault.Dialer(inj)
	reg := obs.NewRegistry()
	cfg.Obs = obs.New(reg)
	client, err := DialConfig(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const perRound = 32
	round := 0
	for ; round < 40; round++ {
		if round >= 3 && inj.Stats().Disconnects >= 2 {
			break
		}
		var wg sync.WaitGroup
		errs := make([]error, perRound)
		for i := 0; i < perRound; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				row := fmt.Sprintf("r%02d-%02d", round, i)
				errs[i] = client.PutFloat("t", row, "v", float64(round*perRound+i))
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d put %d: %v", round, i, err)
			}
		}
	}
	if inj.Stats().Disconnects == 0 {
		t.Fatalf("injector produced no disconnects in %d rounds; test exercised nothing", round)
	}

	boot, err := store.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for r := 0; r < round; r++ {
		for i := 0; i < perRound; i++ {
			row := fmt.Sprintf("r%02d-%02d", r, i)
			versions := boot.GetVersions(row, "v", 0)
			if len(versions) != 1 {
				t.Fatalf("row %s has %d versions, want exactly 1 (dedup broken under pipelining)", row, len(versions))
			}
			total++
		}
	}
	if cells := boot.Scan(kvstore.ScanOptions{}); len(cells) != total {
		t.Errorf("store holds %d cells, want %d", len(cells), total)
	}
}
