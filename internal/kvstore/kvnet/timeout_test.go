package kvnet

import (
	"errors"
	"net"
	"testing"
	"time"

	"smartflux/internal/obs"
)

// silentListener accepts connections and never responds, so client reads
// block until their deadline fires.
func silentListener(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	t.Cleanup(func() { ln.Close(); <-done })
	go func() {
		defer close(done)
		var conns []net.Conn
		defer func() {
			for _, c := range conns {
				c.Close()
			}
		}()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conns = append(conns, conn) // hold open, never reply
		}
	}()
	return ln.Addr().String()
}

// TestClientReadTimeout checks a configured read deadline turns a silent
// server into a prompt timeout error and bumps the timeout counter.
func TestClientReadTimeout(t *testing.T) {
	addr := silentListener(t)
	reg := obs.NewRegistry()
	client, err := DialConfig(addr, ClientConfig{
		DialTimeout: time.Second,
		ReadTimeout: 50 * time.Millisecond,
		Obs:         obs.New(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	start := time.Now()
	_, _, err = client.Get("t", "r", "c")
	if err == nil {
		t.Fatal("expected a timeout error")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want errors.Is(err, ErrTimeout)", err)
	}
	// The original net.Error must stay reachable through the sentinel wrap.
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("err = %v, want a net timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timed out after %v, deadline not applied", elapsed)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[`smartflux_kvnet_client_timeouts_total{kind="read"}`]; got != 1 {
		t.Fatalf("read timeout counter = %d, want 1", got)
	}
}

// TestClientNoDeadlinesByDefault checks the zero config keeps today's
// behavior: no deadlines, normal round trips against a live server.
func TestClientNoDeadlinesByDefault(t *testing.T) {
	_, addr := startServer(t)
	client, err := DialConfig(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.CreateTable("t", 0); err != nil {
		t.Fatal(err)
	}
	if err := client.PutFloat("t", "r", "c", 4.5); err != nil {
		t.Fatal(err)
	}
	v, ok, err := client.GetFloat("t", "r", "c")
	if err != nil || !ok || v != 4.5 {
		t.Fatalf("GetFloat = %v, %v, %v", v, ok, err)
	}
}

// TestDialTimeoutUnreachable checks DialTimeout bounds connection attempts.
func TestDialTimeoutUnreachable(t *testing.T) {
	// A listener we immediately close: connections are refused quickly,
	// so this mostly exercises the DialTimeout code path.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := DialConfig(addr, ClientConfig{DialTimeout: 100 * time.Millisecond}); err == nil {
		t.Fatal("dial to a closed port must fail")
	}
}
