package kvnet

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"smartflux/internal/fault"
	"smartflux/internal/kvstore"
	"smartflux/internal/obs"
)

// retryCfg is a client config with enough retry budget to ride out the
// injected fault rates used in this file.
func retryCfg(seed int64) ClientConfig {
	return ClientConfig{
		DialTimeout:  2 * time.Second,
		ReadTimeout:  2 * time.Second,
		WriteTimeout: 2 * time.Second,
		MaxRetries:   12,
		RetryBackoff: time.Millisecond,
		RetrySeed:    seed,
	}
}

// TestClientReconnectsAcrossServerRestart kills the server mid-session and
// restarts it on the same address with the same store: the next operation
// must transparently redial and succeed.
func TestClientReconnectsAcrossServerRestart(t *testing.T) {
	store := kvstore.New()
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	cfg := retryCfg(1)
	cfg.Obs = obs.New(reg)
	client, err := DialConfig(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.CreateTable("t", 0); err != nil {
		t.Fatal(err)
	}
	if err := client.PutFloat("t", "r", "before", 1); err != nil {
		t.Fatal(err)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(store)
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer srv2.Close()

	// The client's connection is dead; the op must fail over to a fresh one.
	if err := client.PutFloat("t", "r", "after", 2); err != nil {
		t.Fatalf("put after restart: %v", err)
	}
	v, ok, err := client.GetFloat("t", "r", "before")
	if err != nil || !ok || v != 1 {
		t.Fatalf("pre-restart data: %v, %v, %v", v, ok, err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["smartflux_kvnet_client_reconnects_total"]; got < 1 {
		t.Errorf("reconnects = %d, want >= 1", got)
	}
	// No retries assertion: the pipelined client detects the dead
	// connection asynchronously, so the post-restart op is charged a retry
	// only if it was already in flight when the failure surfaced — with a
	// quiet gap between ops a plain reconnect (retries = 0) is correct.
	// Deterministic retry accounting is covered by TestRetryChargesFrames.
}

// TestClientRetriesThroughInjectedDisconnects runs a workload over a
// connection that randomly drops and delays: with retries configured every
// operation must still succeed and the final contents must match a
// fault-free run exactly.
func TestChaosClientRetriesThroughInjectedDisconnects(t *testing.T) {
	store := kvstore.New()
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	inj := fault.New(fault.Policy{
		Seed:           42,
		DisconnectRate: 0.1,
		LatencyRate:    0.2,
		Latency:        200 * time.Microsecond,
	})
	cfg := retryCfg(7)
	cfg.Dial = fault.Dialer(inj)
	client, err := DialConfig(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.CreateTable("t", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		row := fmt.Sprintf("r%03d", i)
		if err := client.PutFloat("t", row, "v", float64(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		v, ok, err := client.GetFloat("t", row, "v")
		if err != nil || !ok || v != float64(i) {
			t.Fatalf("get %d = %v, %v, %v", i, v, ok, err)
		}
	}
	if got := inj.Stats().Disconnects; got == 0 {
		t.Fatal("injector never disconnected; test exercised nothing")
	}
	tbl, err := store.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.RowCount(); got != 100 {
		t.Fatalf("rows = %d, want 100", got)
	}
}

// TestMutatingRetryExactlyOnce drops the server's first response on the
// floor: the client retries the Put, the server's dedup cache answers from
// memory, and the store must hold exactly one version of the cell —
// re-applying would have written two.
func TestMutatingRetryExactlyOnce(t *testing.T) {
	store := kvstore.New()
	if _, err := store.EnsureTable("t", kvstore.TableOptions{}); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv := NewServer(store)
	srv.Instrument(obs.New(reg))

	// Kill the connection at the server's first write: the Put is applied
	// but its response never reaches the client.
	inj := fault.New(fault.Policy{
		Seed:            1,
		DisconnectAfter: 1,
		Ops:             map[string]bool{"write": true},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.ServeListener(fault.WrapListener(ln, inj))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := DialConfig(addr, retryCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.PutFloat("t", "row", "col", 9.5); err != nil {
		t.Fatalf("put through lost response: %v", err)
	}
	tbl, err := store.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if versions := tbl.GetVersions("row", "col", 10); len(versions) != 1 {
		t.Fatalf("cell has %d versions, want exactly 1 (dedup must prevent double-apply)", len(versions))
	}
	snap := reg.Snapshot()
	if got := snap.Counters["smartflux_kvnet_dedup_hits_total"]; got < 1 {
		t.Errorf("dedup hits = %d, want >= 1", got)
	}
}

// TestConnectionChurnNoLeaks slams the server with 100 connect/kill cycles —
// half clean closes, half abrupt TCP teardowns, some mid-handshake — and
// checks the goroutine count settles back to its baseline.
func TestChaosConnectionChurnNoLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()

	srv := NewServer(kvstore.New())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 100; i++ {
		switch i % 3 {
		case 0: // clean session: dial, one op, Close
			client, err := Dial(addr)
			if err != nil {
				t.Fatalf("cycle %d dial: %v", i, err)
			}
			if err := client.CreateTable("churn", 0); err != nil {
				t.Fatalf("cycle %d op: %v", i, err)
			}
			if err := client.Close(); err != nil {
				t.Fatalf("cycle %d close: %v", i, err)
			}
		case 1: // killed client: raw TCP, no frames, abrupt close
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatalf("cycle %d dial: %v", i, err)
			}
			_ = conn.Close()
		default: // killed mid-frame: partial garbage then gone
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatalf("cycle %d dial: %v", i, err)
			}
			_, _ = conn.Write([]byte{0x01})
			_ = conn.Close()
		}
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Goroutine teardown is asynchronous after conn.Close; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines = %d after churn, baseline %d: leak", runtime.NumGoroutine(), baseline)
}

// TestClientCloseIdempotentConcurrent closes a client from several
// goroutines while operations are in flight: no panics, repeat Closes
// return nil, and interrupted operations surface ErrClosed rather than raw
// transport errors.
func TestClientCloseIdempotentConcurrent(t *testing.T) {
	_, addr := startServer(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.CreateTable("t", 0); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; ; j++ {
				if _, _, err := client.Get("t", "r", "c"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond) // let the workers get in flight
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := client.Close(); err != nil {
				t.Errorf("concurrent Close: %v", err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, ErrClosed) {
			t.Errorf("in-flight op failed with %v, want ErrClosed", err)
		}
	}
	if err := client.Close(); err != nil {
		t.Errorf("repeat Close = %v, want nil", err)
	}
	if _, _, err := client.Get("t", "r", "c"); !errors.Is(err, ErrClosed) {
		t.Errorf("op after Close = %v, want ErrClosed", err)
	}
}

// TestClientCloseUnblocksPendingRead closes a client whose Get is parked on
// a never-responding server: the op must fail promptly with ErrClosed
// instead of hanging.
func TestClientCloseUnblocksPendingRead(t *testing.T) {
	addr := silentListener(t)
	client, err := DialConfig(addr, ClientConfig{DialTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, _, err := client.Get("t", "r", "c")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the Get block on the read
	if err := client.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked Get returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Get still blocked after Close")
	}
}

// TestServerCloseConcurrent races several Close calls; all must return
// without panicking and repeat calls return nil.
func TestServerCloseConcurrent(t *testing.T) {
	srv := NewServer(kvstore.New())
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = srv.Close()
		}()
	}
	wg.Wait()
	if err := srv.Close(); err != nil {
		t.Errorf("repeat Close = %v, want nil", err)
	}
}

// TestServerDrainClosesIdleConnsPromptly checks Close with the default
// drain window does not stall on idle connections: their reads wake
// immediately rather than waiting out the window.
func TestServerDrainClosesIdleConnsPromptly(t *testing.T) {
	srv := NewServer(kvstore.New())
	srv.SetDrainTimeout(30 * time.Second) // would be very visible if waited
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.CreateTable("t", 0); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close took %v with an idle conn; drain must not wait", elapsed)
	}
	if err := srv.Err(); err != nil {
		t.Fatalf("drain left a serving error: %v", err)
	}
}
