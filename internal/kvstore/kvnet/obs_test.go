package kvnet

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"smartflux/internal/kvstore"
	"smartflux/internal/obs"
)

// startInstrumentedServer spins up a server with an observer and an error
// handler feeding errCh.
func startInstrumentedServer(t *testing.T) (*Server, string, *obs.Registry, chan error) {
	t.Helper()
	srv := NewServer(kvstore.New())
	reg := obs.NewRegistry()
	srv.Instrument(obs.New(reg))
	errCh := make(chan error, 16)
	srv.SetErrorHandler(func(err error) {
		select {
		case errCh <- err:
		default:
		}
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr, reg, errCh
}

func TestServerInstrumented(t *testing.T) {
	_, addr, reg, _ := startInstrumentedServer(t)
	client := dialClient(t, addr)

	if err := client.CreateTable("t", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := client.PutFloat("t", "r", "c", float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := client.Get("t", "r", "c"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Scan("t", kvstore.ScanOptions{}); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counters[`smartflux_kvnet_requests_total{op="put"}`]; got != 5 {
		t.Errorf("put requests = %d, want 5", got)
	}
	if got := snap.Counters[`smartflux_kvnet_requests_total{op="get"}`]; got != 1 {
		t.Errorf("get requests = %d, want 1", got)
	}
	if got := snap.Counters["smartflux_kvnet_connections_total"]; got != 1 {
		t.Errorf("connections = %d, want 1", got)
	}
	if h := snap.Histograms["smartflux_kvnet_request_duration_seconds"]; h.Count != 8 {
		t.Errorf("request duration samples = %d, want 8", h.Count)
	}
}

// TestServerSurfacesDecodeErrors sends garbage bytes: the server must count
// the decode failure, invoke the error handler, and retain the error for
// Err() — instead of silently dropping the connection.
func TestServerSurfacesDecodeErrors(t *testing.T) {
	srv, addr, reg, errCh := startInstrumentedServer(t)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("this is not a gob frame")); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	select {
	case err := <-errCh:
		if !strings.Contains(err.Error(), "kvnet decode") {
			t.Errorf("handler got %v, want a decode error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("error handler never invoked")
	}
	if err := srv.Err(); err == nil {
		t.Error("Err() should retain the first serving error")
	}
	snap := reg.Snapshot()
	if got := snap.Counters[`smartflux_kvnet_errors_total{kind="decode"}`]; got != 1 {
		t.Errorf("decode errors = %d, want 1", got)
	}
	var sawConnCounter bool
	for name := range snap.Counters {
		if strings.HasPrefix(name, "smartflux_kvnet_conn_errors_total{remote=") {
			sawConnCounter = true
		}
	}
	if !sawConnCounter {
		t.Error("missing per-connection error counter")
	}
}

// TestServerCleanDisconnectNotAnError: EOF between frames is a normal
// hang-up, not a fault.
func TestServerCleanDisconnectNotAnError(t *testing.T) {
	srv, addr, reg, errCh := startInstrumentedServer(t)

	client := dialClient(t, addr)
	if err := client.CreateTable("t", 0); err != nil {
		t.Fatal(err)
	}
	client.Close()

	// Give the serving goroutine a moment to observe the EOF.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		srv.mu.Lock()
		n := len(srv.conns)
		srv.mu.Unlock()
		if n == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case err := <-errCh:
		t.Fatalf("clean disconnect reported as error: %v", err)
	default:
	}
	if err := srv.Err(); err != nil {
		t.Fatalf("Err() = %v after clean disconnect", err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[`smartflux_kvnet_errors_total{kind="decode"}`]; got != 0 {
		t.Errorf("decode errors = %d after clean disconnect", got)
	}
}

// TestServerUninstrumentedErrorsStillSurface: the handler and Err() work
// without an observer attached.
func TestServerUninstrumentedErrorsStillSurface(t *testing.T) {
	srv := NewServer(kvstore.New())
	var mu sync.Mutex
	var handled []error
	srv.SetErrorHandler(func(err error) {
		mu.Lock()
		handled = append(handled, err)
		mu.Unlock()
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{0xff, 0xfe, 0xfd}); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Err() != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Err() == nil {
		t.Fatal("Err() never set without an observer")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(handled) == 0 {
		t.Error("handler not invoked without an observer")
	}
}
