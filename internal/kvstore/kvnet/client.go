package kvnet

import (
	"bufio"
	"crypto/rand"
	"errors"
	"fmt"
	mrand "math/rand"
	"net"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"smartflux/internal/kvstore"
	"smartflux/internal/kvstore/wire"
	"smartflux/internal/obs"
)

// clientBufSize sizes the response-side buffered reader.
const clientBufSize = 64 << 10

// maxInflightFrames bounds how many frames one client keeps awaiting
// responses for. It must stay well below the server's dedupWindowSize so a
// retried mutating frame's sequence number can never have been evicted.
const maxInflightFrames = 512

// maxPutBatch caps how many adjacent pending Puts the writer micro-batches
// into one OpApply frame.
const maxPutBatch = 64

// ClientConfig configures a client connection. The zero value matches the
// historical behaviour: no deadlines, no retries, no reconnection.
type ClientConfig struct {
	// DialTimeout bounds connection establishment; zero waits forever.
	DialTimeout time.Duration
	// ReadTimeout bounds the wait for the next response while requests are
	// in flight; zero waits forever. A hung or stalled server surfaces as
	// an ErrTimeout-wrapped kvnet recv error instead of blocking the
	// calling workflow step indefinitely.
	ReadTimeout time.Duration
	// WriteTimeout bounds each request write; zero waits forever.
	WriteTimeout time.Duration
	// MaxRetries bounds the extra attempts a failed op gets. Every retry
	// rides a freshly dialed connection. Reads retry as-is; mutating ops
	// retry under their frame's sequence number so the server applies them
	// exactly once.
	MaxRetries int
	// RetryBackoff is the base delay before a retry, doubling each attempt
	// (capped at 64×) with seeded jitter of up to half the delay. Zero
	// retries immediately.
	RetryBackoff time.Duration
	// RetrySeed seeds the jitter source; retries are deterministic given
	// the seed and the failure sequence.
	RetrySeed int64
	// RetryBudget, when positive, caps retries with a client-wide token
	// bucket: the bucket starts full at RetryBudget tokens, every granted
	// retry spends one, and every successfully completed frame earns back
	// RetryRefill tokens (capped at RetryBudget). A frame that needs a retry
	// while the bucket is empty fails fast with ErrUnavailable instead of
	// amplifying an outage into a retry storm. Zero disables budgeting and
	// leaves MaxRetries as the only cap.
	RetryBudget float64
	// RetryRefill is the fraction of a token earned per successful frame
	// (default 0.1 when RetryBudget is set).
	RetryRefill float64
	// OpTimeout, when positive, bounds each operation end-to-end across
	// reconnect attempts: once an op has been pending longer than OpTimeout,
	// the next connection failure abandons it with ErrUnavailable instead of
	// retrying again. Under a persistent partition this turns an unbounded
	// redial loop into a prompt typed failure.
	OpTimeout time.Duration
	// Dial overrides connection establishment (e.g. to interpose
	// internal/fault's Dialer); nil dials TCP with DialTimeout.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// Obs, when non-nil, counts I/O timeouts on
	// smartflux_kvnet_client_timeouts_total{kind="read"|"write"}, retries
	// on smartflux_kvnet_client_retries_total, reconnections on
	// smartflux_kvnet_client_reconnects_total and exact on-wire bytes on
	// smartflux_kvnet_client_bytes_total{dir="sent"|"recv"}.
	Obs *obs.Observer
}

// Client is a pipelined TCP client for a kvnet server. A Client is safe for
// concurrent use: ops from any number of goroutines share one connection,
// with a writer goroutine coalescing pending frames into single writes
// (micro-batching adjacent Puts into one batch frame along the way) and a
// reader goroutine demultiplexing responses by sequence number, so N
// in-flight ops cost one socket and far fewer than N syscalls. With retries
// configured it transparently reconnects after transport failures and
// re-sends in-flight frames under their original sequence numbers.
type Client struct {
	cfg  ClientConfig
	addr string
	id   uint64 // idempotency identity, stable across reconnects

	// root anchors this client's round-trip spans under one unemitted
	// net/c<n> ID; nil when the observer is not tracing spans.
	root *obs.Span

	// mu guards the op queue and connection state shared between op
	// submitters, the writer (connLoop) and the reader (readLoop).
	mu       sync.Mutex
	closed   bool
	seq      uint64 // last assigned frame sequence number
	rtSeq    uint64 // numbers round-trip spans under root
	pending  []*wframe
	inflight map[uint64]*wframe
	conn     net.Conn // live epoch's conn, so Close can sever it
	budget   float64  // remaining retry tokens (RetryBudget semantics)

	// overlap latches once two ops have ever been outstanding at the same
	// time. Strictly sequential callers never set it, which keeps the
	// writer's group-commit yield off their hot path.
	overlap atomic.Bool

	work    chan struct{} // submission kick, capacity 1
	closeCh chan struct{} // closed once by Close
	done    chan struct{} // closed when connLoop exits

	// Supervisor-only state (touched exclusively by connLoop).
	jitter   *mrand.Rand
	everConn bool // a connection has carried an epoch before
	dialSeq  int  // numbers dial spans under root

	readTimeouts  *obs.Counter // nil when no observer is configured
	writeTimeouts *obs.Counter
	retries       *obs.Counter
	reconnects    *obs.Counter
	bytesSent     *obs.Counter
	bytesRecv     *obs.Counter
	budgetDenied  *obs.Counter
}

// call is one public-API operation in flight: its request, its span and its
// completion state.
type call struct {
	req    wire.Request
	sp     *obs.Span
	done   chan struct{}
	err    error
	value  []byte
	found  bool
	cells  []kvstore.Cell
	clock  uint64 // OpStatus
	cursor uint64 // OpStatus
	crc    uint32 // OpStatus
}

// wframe is one wire frame's worth of work: usually a single call, or
// several Puts micro-batched into one OpApply frame. The frame — not the
// call — is the unit of sequencing, sending and retrying: its seq is
// assigned once (first send) and survives reconnects so the server's dedup
// window keeps retried mutations exactly-once.
type wframe struct {
	seq       uint64
	batched   bool
	calls     []*call
	attempts  int            // failed epochs charged so far
	deadline  time.Time      // op-level abandon point; zero = none
	cells     []kvstore.Cell // scan chunk reassembly, reset on retry
	reqBytes  int64          // exact encoded request frame bytes
	respBytes int64          // exact response frame bytes received
}

// clientIDCounter is the fallback identity source when crypto/rand fails.
var clientIDCounter atomic.Uint64

// clientSpanSeq numbers span-tracing clients process-wide so their root span
// IDs (net/c0, net/c1, ...) stay distinct when several clients share sinks.
var clientSpanSeq atomic.Uint64

// newClientID draws a non-zero 64-bit client identity. Identities only need
// to be unique among clients of one server; randomness keeps identities from
// colliding across processes without coordination.
func newClientID() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		var id uint64
		for _, x := range b {
			id = id<<8 | uint64(x)
		}
		if id != 0 {
			return id
		}
	}
	return clientIDCounter.Add(1)
}

// Dial connects to a kvnet server with no I/O deadlines and no retries.
func Dial(addr string) (*Client, error) {
	return DialConfig(addr, ClientConfig{})
}

// DialConfig connects to a kvnet server with the given configuration.
func DialConfig(addr string, cfg ClientConfig) (*Client, error) {
	c := &Client{
		cfg:      cfg,
		addr:     addr,
		id:       newClientID(),
		inflight: make(map[uint64]*wframe),
		work:     make(chan struct{}, 1),
		closeCh:  make(chan struct{}),
		done:     make(chan struct{}),
		budget:   cfg.RetryBudget,
		jitter:   mrand.New(mrand.NewSource(cfg.RetrySeed)),
	}
	if cfg.Obs != nil {
		c.readTimeouts = cfg.Obs.Counter(`smartflux_kvnet_client_timeouts_total{kind="read"}`)
		c.writeTimeouts = cfg.Obs.Counter(`smartflux_kvnet_client_timeouts_total{kind="write"}`)
		c.retries = cfg.Obs.Counter("smartflux_kvnet_client_retries_total")
		c.reconnects = cfg.Obs.Counter("smartflux_kvnet_client_reconnects_total")
		c.bytesSent = cfg.Obs.Counter(`smartflux_kvnet_client_bytes_total{dir="sent"}`)
		c.bytesRecv = cfg.Obs.Counter(`smartflux_kvnet_client_bytes_total{dir="recv"}`)
		c.budgetDenied = cfg.Obs.Counter("smartflux_kvnet_client_budget_exhausted_total")
	}
	if cfg.Obs.Spanning() {
		idx := clientSpanSeq.Add(1) - 1
		c.root = cfg.Obs.RootSpan("net/c"+strconv.FormatUint(idx, 10), "client", "net")
	}
	// Eager first dial so an unreachable server fails construction, as it
	// always has.
	var dialSp *obs.Span
	if c.root != nil {
		dialSp = c.root.ChildKey("dial0", "dial", "net")
		c.dialSeq = 1
	}
	conn, err := c.dialConn()
	dialSp.EndErr(err)
	if err != nil {
		return nil, &opError{stage: "dial", err: err}
	}
	go c.connLoop(conn)
	return c, nil
}

// dialConn establishes one connection using the configured dial function.
func (c *Client) dialConn() (net.Conn, error) {
	if c.cfg.Dial != nil {
		return c.cfg.Dial(c.addr, c.cfg.DialTimeout)
	}
	if c.cfg.DialTimeout > 0 {
		return net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	}
	return net.Dial("tcp", c.addr)
}

// isClosed reports whether Close has begun.
func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// kick nudges the writer without blocking; the capacity-1 channel makes
// repeated kicks idempotent.
func (c *Client) kick() {
	select {
	case c.work <- struct{}{}:
	default:
	}
}

// Close closes the client. It is idempotent, safe to call concurrently with
// in-flight operations — those fail promptly with ErrClosed instead of a
// raw transport error — and returns nil on repeat calls.
func (c *Client) Close() error {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	if !already {
		close(c.closeCh)
		if conn != nil {
			_ = conn.Close() // unblocks the epoch's reader and writer
		}
	}
	<-c.done
	return nil
}

// opError wraps a transport failure with its sentinel classification. Both
// the sentinel (ErrClosed / ErrTimeout) and the underlying error stay
// reachable through errors.Is / errors.As.
type opError struct {
	stage string // "dial", "send", "recv"
	kind  error  // ErrClosed or ErrTimeout; nil for plain transport errors
	err   error
}

func (e *opError) Error() string {
	switch {
	case e.kind != nil && e.err != nil:
		return fmt.Sprintf("kvnet %s: %v: %v", e.stage, e.kind, e.err)
	case e.kind != nil:
		return fmt.Sprintf("kvnet %s: %v", e.stage, e.kind)
	default:
		return fmt.Sprintf("kvnet %s: %v", e.stage, e.err)
	}
}

func (e *opError) Unwrap() []error {
	switch {
	case e.kind != nil && e.err != nil:
		return []error{e.kind, e.err}
	case e.kind != nil:
		return []error{e.kind}
	default:
		return []error{e.err}
	}
}

// IsTransport reports whether err is a kvnet transport-level failure (dial,
// send or recv — the op may or may not have executed server-side) rather
// than an application error returned by the server (the op executed). The
// cluster layer uses it to decide whether a failure is worth a health probe.
func IsTransport(err error) bool {
	var oe *opError
	return errors.As(err, &oe)
}

// wrapIOErr classifies one send/recv failure: concurrent Close becomes
// ErrClosed, net timeouts become ErrTimeout (counted), everything else
// passes through wrapped with its stage.
func (c *Client) wrapIOErr(stage string, err error, timeouts *obs.Counter) error {
	if c.isClosed() {
		return &opError{stage: stage, kind: ErrClosed, err: err}
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		timeouts.Inc() // nil-safe no-op when uninstrumented
		return &opError{stage: stage, kind: ErrTimeout, err: err}
	}
	return &opError{stage: stage, err: err}
}

// retryDelay is the one place backoff delays are computed: base doubling
// per 0-based attempt (capped at 64×) plus jitter of up to half the delay
// drawn from the seeded source.
func retryDelay(base time.Duration, attempt int, jitter *mrand.Rand) time.Duration {
	if base <= 0 {
		return 0
	}
	if attempt > 6 {
		attempt = 6
	}
	d := base << uint(attempt)
	return d + time.Duration(jitter.Int63n(int64(d)/2+1))
}

// ioDeadline is the one place I/O deadlines are computed from configured
// timeouts: the absolute deadline for a timeout d, or the zero time (no
// deadline) when d is unset.
func ioDeadline(d time.Duration) time.Time {
	if d <= 0 {
		return time.Time{}
	}
	return time.Now().Add(d)
}

// do submits one op, waits for its completion and returns the finished
// call. The heavy lifting happens on the connLoop/readLoop goroutines.
func (c *Client) do(req wire.Request) (*call, error) {
	cl := &call{req: req, done: make(chan struct{})}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, &opError{stage: "dial", kind: ErrClosed}
	}
	if c.root != nil {
		cl.sp = c.root.ChildKey("rt"+strconv.FormatUint(c.rtSeq, 10), wire.OpName(req.Op), "net")
		c.rtSeq++
		if req.Table != "" {
			cl.sp.SetAttr("table", req.Table)
		}
	}
	if !c.overlap.Load() && (len(c.pending) > 0 || len(c.inflight) > 0) {
		c.overlap.Store(true)
	}
	f := &wframe{calls: []*call{cl}}
	if c.cfg.OpTimeout > 0 {
		f.deadline = time.Now().Add(c.cfg.OpTimeout)
	}
	c.pending = append(c.pending, f)
	c.mu.Unlock()
	c.kick()
	<-cl.done
	return cl, cl.err
}

// connLoop is the client's connection supervisor: it owns dialing, backoff
// and one connection "epoch" at a time, charging every epoch failure to the
// frames it stranded and re-sending survivors on the next connection.
func (c *Client) connLoop(conn net.Conn) {
	defer close(c.done)
	for {
		if conn == nil {
			if !c.waitWork() {
				break
			}
			if attempt := c.retryAttempt(); attempt >= 0 {
				if !c.sleepBackoff(attempt) {
					break
				}
			}
			var dialSp *obs.Span
			if c.root != nil {
				dialSp = c.root.ChildKey("dial"+strconv.Itoa(c.dialSeq), "dial", "net")
				c.dialSeq++
			}
			var err error
			conn, err = c.dialConn()
			dialSp.EndErr(err)
			if err != nil {
				c.chargeFailure(&opError{stage: "dial", err: err}, true)
				continue
			}
		}
		if c.isClosed() {
			_ = conn.Close()
			break
		}
		if c.everConn {
			c.reconnects.Inc() // nil-safe no-op when uninstrumented
		}
		c.everConn = true
		err := c.runEpoch(conn)
		conn = nil
		if c.isClosed() {
			break
		}
		c.chargeFailure(err, false)
	}
	c.shutdown()
}

// waitWork blocks until an op is pending; false means the client closed.
func (c *Client) waitWork() bool {
	for {
		c.mu.Lock()
		closed, has := c.closed, len(c.pending) > 0
		c.mu.Unlock()
		if closed {
			return false
		}
		if has {
			return true
		}
		select {
		case <-c.work:
		case <-c.closeCh:
			return false
		}
	}
}

// retryAttempt returns the 0-based backoff attempt for the oldest pending
// retry frame, or -1 when every pending frame is fresh (no backoff due).
func (c *Client) retryAttempt() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, f := range c.pending {
		if f.attempts > 0 {
			return f.attempts - 1
		}
	}
	return -1
}

// sleepBackoff sleeps out the retry delay, interruptible by Close; false
// means the client closed.
func (c *Client) sleepBackoff(attempt int) bool {
	d := retryDelay(c.cfg.RetryBackoff, attempt, c.jitter)
	if d <= 0 {
		return !c.isClosed()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.closeCh:
		return false
	}
}

// chargeFailure charges a connection failure to the frames it stranded —
// those in flight on the dead epoch, or (for a dial failure) everything
// pending. Frames out of retry allowance fail; survivors requeue at the
// front of pending, in sequence order, keeping their assigned seqs so
// retried mutations stay exactly-once server-side. A retry is granted only
// when every cap agrees: the per-frame MaxRetries count, the frame's op
// deadline (OpTimeout) and the client-wide token-bucket RetryBudget — the
// last two fail the frame with a typed ErrUnavailable so callers stop
// waiting on a peer that is not coming back.
func (c *Client) chargeFailure(err error, dialFailure bool) {
	closing := errors.Is(err, ErrClosed)
	now := time.Now()
	c.mu.Lock()
	var affected []*wframe
	if dialFailure {
		affected = c.pending
		c.pending = nil
	} else {
		affected = make([]*wframe, 0, len(c.inflight))
		for _, f := range c.inflight {
			affected = append(affected, f)
		}
		sort.Slice(affected, func(i, j int) bool { return affected[i].seq < affected[j].seq })
		clear(c.inflight)
	}
	var requeue, failed []*wframe
	var failErrs []error
	var denied int
	for _, f := range affected {
		f.attempts++
		f.cells = nil // discard partial scan chunks from the dead epoch
		f.respBytes = 0
		switch {
		case closing || f.attempts > c.cfg.MaxRetries:
			failed, failErrs = append(failed, f), append(failErrs, err)
		case !f.deadline.IsZero() && now.After(f.deadline):
			failed = append(failed, f)
			failErrs = append(failErrs, &opError{stage: "retry", kind: ErrUnavailable, err: fmt.Errorf("op deadline exceeded after %d attempts: %w", f.attempts, err)})
		case c.cfg.RetryBudget > 0 && c.budget < 1:
			denied++
			failed = append(failed, f)
			failErrs = append(failErrs, &opError{stage: "retry", kind: ErrUnavailable, err: fmt.Errorf("retry budget exhausted: %w", err)})
		default:
			if c.cfg.RetryBudget > 0 {
				c.budget--
			}
			requeue = append(requeue, f)
		}
	}
	c.pending = append(requeue, c.pending...)
	c.mu.Unlock()
	for range requeue {
		c.retries.Inc() // nil-safe no-op when uninstrumented
	}
	if denied > 0 {
		c.budgetDenied.Add(uint64(denied)) // nil-safe no-op when uninstrumented
	}
	for i, f := range failed {
		f.fail(failErrs[i])
	}
}

// shutdown fails every queued and in-flight frame with ErrClosed; connLoop
// runs it exactly once, on exit.
func (c *Client) shutdown() {
	err := &opError{stage: "send", kind: ErrClosed}
	c.mu.Lock()
	pend := c.pending
	c.pending = nil
	infl := make([]*wframe, 0, len(c.inflight))
	for _, f := range c.inflight {
		infl = append(infl, f)
	}
	sort.Slice(infl, func(i, j int) bool { return infl[i].seq < infl[j].seq })
	clear(c.inflight)
	c.mu.Unlock()
	for _, f := range infl {
		f.fail(err)
	}
	for _, f := range pend {
		f.fail(err)
	}
}

// runEpoch drives one connection until it fails or the client closes: a
// reader goroutine demultiplexes responses while this (writer) side drains
// the pending queue, coalescing the hello preamble and every ready frame
// into single writes. The returned error is the epoch's classified cause of
// death.
func (c *Client) runEpoch(conn net.Conn) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		_ = conn.Close()
		return &opError{stage: "send", kind: ErrClosed}
	}
	c.conn = conn
	c.mu.Unlock()

	readerErr := make(chan error, 1)
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		c.readLoop(conn, readerErr)
	}()
	defer func() {
		_ = conn.Close()
		rwg.Wait()
		c.mu.Lock()
		if c.conn == conn {
			c.conn = nil
		}
		c.mu.Unlock()
	}()

	buf := wire.GetBuffer()
	defer buf.Release()
	hello := true
	for {
		frames := c.takePending()
		if len(frames) == 0 && !hello {
			select {
			case <-c.work:
				continue
			case err := <-readerErr:
				return err
			case <-c.closeCh:
				return &opError{stage: "send", kind: ErrClosed}
			}
		}
		if len(frames) > 0 && c.overlap.Load() {
			// Group commit: the caller that kicked us parked right after its
			// enqueue, so concurrent callers are often still runnable with
			// their frames not yet queued. One yield lets them land in this
			// same write instead of costing a syscall each. Gated on overlap
			// so sequential callers never pay for the yield.
			runtime.Gosched()
			frames = append(frames, c.takePending()...)
		}
		buf.Reset()
		if hello {
			wire.AppendHello(buf, c.id)
			hello = false
		}
		for _, f := range frames {
			encodeFrame(buf, f)
		}
		_ = conn.SetWriteDeadline(ioDeadline(c.cfg.WriteTimeout))
		n, err := conn.Write(buf.Bytes())
		if n > 0 {
			c.bytesSent.Add(uint64(n)) // nil-safe no-op when uninstrumented
		}
		if err != nil {
			werr := c.wrapIOErr("send", err, c.writeTimeouts)
			// The reader usually dies of the same failure with a more
			// specific diagnosis (it closes the conn on its way out, which
			// is what writes then trip over); prefer its verdict.
			select {
			case rerr := <-readerErr:
				werr = rerr
			default:
			}
			return werr
		}
		c.armReadDeadline(conn)
	}
}

// takePending moves ready frames from pending to inflight (bounded by
// maxInflightFrames), assigning sequence numbers to fresh frames and
// micro-batching runs of adjacent fresh single Puts to the same table into
// one OpApply frame. Retried frames keep their seqs and are never merged.
func (c *Client) takePending() []*wframe {
	c.mu.Lock()
	defer c.mu.Unlock()
	room := maxInflightFrames - len(c.inflight)
	if room <= 0 || len(c.pending) == 0 {
		return nil
	}
	var frames []*wframe
	i := 0
	for i < len(c.pending) && len(frames) < room {
		f := c.pending[i]
		i++
		if f.seq == 0 && mergeablePut(f) {
			for i < len(c.pending) && len(f.calls) < maxPutBatch {
				g := c.pending[i]
				if g.seq != 0 || !mergeablePut(g) || g.calls[0].req.Table != f.calls[0].req.Table {
					break
				}
				f.calls = append(f.calls, g.calls[0])
				i++
			}
			f.batched = len(f.calls) > 1
		}
		if f.seq == 0 {
			c.seq++
			f.seq = c.seq
		}
		c.inflight[f.seq] = f
		frames = append(frames, f)
	}
	c.pending = append(c.pending[:0], c.pending[i:]...)
	return frames
}

// mergeablePut reports whether a fresh frame is a single Put eligible for
// micro-batching. Puts with empty keys are excluded: they fail validation
// individually server-side, and merging them would fail their batchmates.
func mergeablePut(f *wframe) bool {
	return len(f.calls) == 1 && f.calls[0].req.Op == wire.OpPut &&
		f.calls[0].req.Row != "" && f.calls[0].req.Column != ""
}

// encodeFrame appends f's wire frame to buf, recording its exact size.
func encodeFrame(buf *wire.Buffer, f *wframe) {
	start := buf.Len()
	if f.batched {
		req := wire.Request{
			Op:    wire.OpApply,
			Flags: wire.FlagBatch,
			Seq:   f.seq,
			Table: f.calls[0].req.Table,
			Ops:   make([]kvstore.Op, len(f.calls)),
		}
		for i, cl := range f.calls {
			req.Ops[i] = kvstore.Op{Row: cl.req.Row, Column: cl.req.Column, Value: cl.req.Value}
		}
		wire.AppendRequest(buf, &req)
	} else {
		req := f.calls[0].req
		req.Seq = f.seq
		wire.AppendRequest(buf, &req)
	}
	f.reqBytes = int64(buf.Len() - start)
	f.respBytes = 0
}

// armReadDeadline (re)arms the read deadline after a write, under the same
// lock that guards inflight so it can never race a reader that just drained
// the last response and disarmed.
func (c *Client) armReadDeadline(conn net.Conn) {
	if c.cfg.ReadTimeout <= 0 {
		return
	}
	c.mu.Lock()
	if len(c.inflight) > 0 {
		_ = conn.SetReadDeadline(ioDeadline(c.cfg.ReadTimeout))
	}
	c.mu.Unlock()
}

// readLoop reads response frames until the connection dies, handing each to
// deliver. On failure it closes the conn (unblocking the writer) and posts
// its classified error.
func (c *Client) readLoop(conn net.Conn, readerErr chan<- error) {
	br := bufio.NewReaderSize(conn, clientBufSize)
	buf := wire.GetBuffer()
	defer buf.Release()
	for {
		h, payload, err := wire.ReadFrame(br, buf)
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() && c.inflightEmpty() {
				// An idle deadline expired with nothing awaited (the frames
				// it guarded were answered after it was armed): disarm and
				// keep reading. No bytes can be lost mid-frame — the server
				// only sends in response to in-flight requests.
				_ = conn.SetReadDeadline(time.Time{})
				continue
			}
			_ = conn.Close() // unblock the writer side of this epoch
			readerErr <- c.wrapIOErr("recv", err, c.readTimeouts)
			return
		}
		c.bytesRecv.Add(uint64(wire.HeaderSize + len(payload))) // nil-safe
		resp, derr := wire.DecodeResponse(h, payload)
		if derr != nil {
			_ = conn.Close()
			readerErr <- c.wrapIOErr("recv", derr, c.readTimeouts)
			return
		}
		c.deliver(&resp, int64(wire.HeaderSize+len(payload)), conn)
	}
}

// inflightEmpty reports whether no frames await responses.
func (c *Client) inflightEmpty() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.inflight) == 0
}

// deliver routes one response frame to its in-flight frame by seq,
// reassembling streamed scan chunks, managing the read deadline and waking
// the writer when a completed frame frees in-flight room.
func (c *Client) deliver(resp *wire.Response, frameBytes int64, conn net.Conn) {
	var completed *wframe
	c.mu.Lock()
	if f := c.inflight[resp.Seq]; f != nil {
		f.respBytes += frameBytes
		if resp.Op == wire.OpScan && resp.Err == "" {
			f.cells = appendCells(f.cells, resp.Cells)
		}
		if !resp.Chunk {
			delete(c.inflight, resp.Seq)
			completed = f
			if c.cfg.RetryBudget > 0 {
				// A finished frame earns back a fraction of a retry token —
				// pure arithmetic on the completion sequence, so budget state
				// is deterministic for a deterministic failure sequence.
				refill := c.cfg.RetryRefill
				if refill <= 0 {
					refill = 0.1
				}
				if c.budget += refill; c.budget > c.cfg.RetryBudget {
					c.budget = c.cfg.RetryBudget
				}
			}
		}
	}
	kick := len(c.pending) > 0 && len(c.inflight) < maxInflightFrames
	if c.cfg.ReadTimeout > 0 {
		if len(c.inflight) == 0 {
			_ = conn.SetReadDeadline(time.Time{})
		} else {
			_ = conn.SetReadDeadline(ioDeadline(c.cfg.ReadTimeout))
		}
	}
	c.mu.Unlock()
	if kick {
		c.kick()
	}
	if completed != nil {
		completed.complete(resp)
	}
}

// appendCells converts one wire scan chunk into store cells, copying the
// values (which alias the reader's frame buffer) into one arena allocation
// per chunk.
func appendCells(dst []kvstore.Cell, src []wire.Cell) []kvstore.Cell {
	if len(src) == 0 {
		return dst
	}
	var total int
	for i := range src {
		total += len(src[i].Value)
	}
	arena := make([]byte, 0, total)
	for i := range src {
		off := len(arena)
		arena = append(arena, src[i].Value...)
		dst = append(dst, kvstore.Cell{
			Row:     src[i].Row,
			Column:  src[i].Column,
			Version: kvstore.Version{Timestamp: src[i].Timestamp, Value: arena[off:len(arena):len(arena)]},
		})
	}
	return dst
}

// complete finishes every call on a delivered frame: result extraction,
// span bookkeeping (exact on-wire bytes, split across batchmates) and
// wake-up. Application errors mean the op executed server-side; for a
// batched frame the batch applied atomically, so the outcome is shared.
func (f *wframe) complete(resp *wire.Response) {
	var appErr error
	if resp.Err != "" {
		if resp.Flags&wire.FlagFenced != 0 {
			// Rehydrate the fencing sentinel the server flattened to a
			// string: callers match with errors.Is(err, ErrFenced).
			appErr = fmt.Errorf("%w: %s", ErrFenced, resp.Err)
		} else {
			appErr = errors.New(resp.Err)
		}
	}
	n := int64(len(f.calls))
	baseBytes := (f.reqBytes + f.respBytes) / n
	remBytes := (f.reqBytes + f.respBytes) % n
	for i, cl := range f.calls {
		cl.err = appErr
		if appErr == nil {
			switch cl.req.Op {
			case wire.OpGet:
				cl.found = resp.Found
				if resp.Found {
					// Copy: resp.Value aliases the reader's frame buffer.
					cl.value = append([]byte(nil), resp.Value...)
				}
			case wire.OpScan:
				cl.cells = f.cells
			case wire.OpStatus:
				cl.clock, cl.cursor, cl.crc = resp.Clock, resp.Cursor, resp.Crc
			case wire.OpMapGet:
				// Copy: resp.Map aliases the reader's frame buffer.
				cl.value = append([]byte(nil), resp.Map...)
			}
		}
		if cl.sp != nil {
			b := baseBytes
			if i == 0 {
				b += remBytes
			}
			if f.batched {
				cl.sp.SetAttr("batched", "true")
			}
			cl.sp.SetRetries(f.attempts)
			cl.sp.SetBytes(b)
			if appErr != nil {
				cl.sp.EndErr(appErr)
			} else {
				cl.sp.End()
			}
		}
		close(cl.done)
	}
}

// fail finishes every call on a frame with a transport-level error.
func (f *wframe) fail(err error) {
	retries := f.attempts - 1
	if retries < 0 {
		retries = 0
	}
	for _, cl := range f.calls {
		cl.err = err
		if cl.sp != nil {
			cl.sp.SetRetries(retries)
			cl.sp.EndErr(err)
		}
		close(cl.done)
	}
}

// CreateTable ensures a table exists on the server.
func (c *Client) CreateTable(name string, maxVersions int) error {
	_, err := c.do(wire.Request{Op: wire.OpCreateTable, Table: name, MaxVers: maxVersions})
	return err
}

// Put writes a value.
func (c *Client) Put(table, row, column string, value []byte) error {
	_, err := c.do(wire.Request{Op: wire.OpPut, Table: table, Row: row, Column: column, Value: value})
	return err
}

// PutFloat writes an encoded float64.
func (c *Client) PutFloat(table, row, column string, v float64) error {
	return c.Put(table, row, column, kvstore.EncodeFloat(v))
}

// Get reads the latest value of a cell.
func (c *Client) Get(table, row, column string) ([]byte, bool, error) {
	cl, err := c.do(wire.Request{Op: wire.OpGet, Table: table, Row: row, Column: column})
	if err != nil {
		return nil, false, err
	}
	return cl.value, cl.found, nil
}

// GetFloat reads a float64-encoded cell.
func (c *Client) GetFloat(table, row, column string) (float64, bool, error) {
	raw, found, err := c.Get(table, row, column)
	if err != nil || !found {
		return 0, found, err
	}
	v, err := kvstore.DecodeFloat(raw)
	if err != nil {
		return 0, false, err
	}
	return v, true, nil
}

// Delete removes a cell.
func (c *Client) Delete(table, row, column string) error {
	_, err := c.do(wire.Request{Op: wire.OpDelete, Table: table, Row: row, Column: column})
	return err
}

// Scan returns matching cells, reassembled in key order from the server's
// streamed chunks.
func (c *Client) Scan(table string, opts kvstore.ScanOptions) ([]kvstore.Cell, error) {
	cl, err := c.do(wire.Request{Op: wire.OpScan, Table: table, Scan: opts})
	if err != nil {
		return nil, err
	}
	return cl.cells, nil
}

// Apply applies a batch atomically on the server.
func (c *Client) Apply(table string, ops []kvstore.Op) error {
	_, err := c.do(wire.Request{Op: wire.OpApply, Table: table, Ops: ops})
	return err
}

// Ping round-trips an empty frame — the health checker's liveness probe.
func (c *Client) Ping() error {
	_, err := c.do(wire.Request{Op: wire.OpPing})
	return err
}

// Status reports the server's replication status: its store clock, its
// replication-log cursor (records appended so far) and the rolling checksum
// of the log prefix up to that cursor.
func (c *Client) Status() (clock, cursor uint64, crc uint32, err error) {
	cl, err := c.do(wire.Request{Op: wire.OpStatus})
	if err != nil {
		return 0, 0, 0, err
	}
	return cl.clock, cl.cursor, cl.crc, nil
}

// Repl ships a batch of replication records to the server without an epoch
// stamp (accepted only while the receiving node is unfenced). Records carry
// explicit timestamps and apply idempotently, so retried batches are safe.
func (c *Client) Repl(records [][]byte) error {
	return c.ReplEpoch(0, records)
}

// ReplEpoch ships a batch of replication records stamped with the sender's
// shard epoch. A node holding a higher epoch rejects the batch with an
// ErrFenced-matchable error — the wire half of epoch fencing (DESIGN.md §15).
func (c *Client) ReplEpoch(epoch uint64, records [][]byte) error {
	_, err := c.do(wire.Request{Op: wire.OpRepl, Epoch: epoch, Records: records})
	return err
}

// MapGet fetches the server's current encoded partition map (nil when the
// node has none yet).
func (c *Client) MapGet() ([]byte, error) {
	cl, err := c.do(wire.Request{Op: wire.OpMapGet})
	if err != nil {
		return nil, err
	}
	return cl.value, nil
}

// MapSet replaces the server's partition map with the encoded m.
func (c *Client) MapSet(m []byte) error {
	_, err := c.do(wire.Request{Op: wire.OpMapSet, Map: m})
	return err
}

// ScanVersions returns every retained version of every matching cell —
// newest first per cell, cells in key order — streamed back in chunks like a
// plain Scan. This is the cluster dump path.
func (c *Client) ScanVersions(table string, opts kvstore.ScanOptions) ([]kvstore.Cell, error) {
	cl, err := c.do(wire.Request{Op: wire.OpScan, Flags: wire.FlagVersions, Table: table, Scan: opts})
	if err != nil {
		return nil, err
	}
	return cl.cells, nil
}
