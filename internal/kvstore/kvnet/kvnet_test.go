package kvnet

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"smartflux/internal/kvstore"
)

// startServer spins up a server on an ephemeral port and registers cleanup.
func startServer(t *testing.T) (*kvstore.Store, string) {
	t.Helper()
	store := kvstore.New()
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return store, addr
}

func dialClient(t *testing.T, addr string) *Client {
	t.Helper()
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

func TestClientRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	client := dialClient(t, addr)

	if err := client.CreateTable("t", 0); err != nil {
		t.Fatal(err)
	}
	if err := client.Put("t", "r", "c", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, found, err := client.Get("t", "r", "c")
	if err != nil || !found || string(got) != "hello" {
		t.Fatalf("Get = %q, %v, %v", got, found, err)
	}
	if _, found, err := client.Get("t", "r", "missing"); err != nil || found {
		t.Errorf("missing cell: found=%v err=%v", found, err)
	}
	if err := client.Delete("t", "r", "c"); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := client.Get("t", "r", "c"); found {
		t.Error("cell survived delete")
	}
}

func TestClientFloatHelpers(t *testing.T) {
	_, addr := startServer(t)
	client := dialClient(t, addr)
	if err := client.CreateTable("t", 0); err != nil {
		t.Fatal(err)
	}
	if err := client.PutFloat("t", "r", "c", 3.25); err != nil {
		t.Fatal(err)
	}
	v, found, err := client.GetFloat("t", "r", "c")
	if err != nil || !found || v != 3.25 {
		t.Fatalf("GetFloat = %v, %v, %v", v, found, err)
	}
}

func TestClientScanAndBatch(t *testing.T) {
	_, addr := startServer(t)
	client := dialClient(t, addr)
	if err := client.CreateTable("t", 0); err != nil {
		t.Fatal(err)
	}
	ops := []kvstore.Op{
		{Row: "a", Column: "c", Value: kvstore.EncodeFloat(1)},
		{Row: "b", Column: "c", Value: kvstore.EncodeFloat(2)},
		{Row: "c", Column: "c", Value: kvstore.EncodeFloat(3)},
	}
	if err := client.Apply("t", ops); err != nil {
		t.Fatal(err)
	}
	cells, err := client.Scan("t", kvstore.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 || cells[0].Row != "a" || cells[2].Row != "c" {
		t.Fatalf("scan = %+v", cells)
	}
	// Delete through a batch.
	if err := client.Apply("t", []kvstore.Op{{Row: "a", Column: "c", Delete: true}}); err != nil {
		t.Fatal(err)
	}
	cells, _ = client.Scan("t", kvstore.ScanOptions{})
	if len(cells) != 2 {
		t.Errorf("after batch delete: %d cells", len(cells))
	}
}

func TestServerErrorsPropagate(t *testing.T) {
	_, addr := startServer(t)
	client := dialClient(t, addr)
	err := client.Put("nosuch", "r", "c", nil)
	if err == nil || !strings.Contains(err.Error(), "table not found") {
		t.Errorf("want table-not-found error, got %v", err)
	}
	// The connection stays usable after a server-side error.
	if err := client.CreateTable("t", 0); err != nil {
		t.Errorf("connection unusable after error: %v", err)
	}
}

func TestServerSharedState(t *testing.T) {
	store, addr := startServer(t)
	client := dialClient(t, addr)
	if err := client.CreateTable("t", 0); err != nil {
		t.Fatal(err)
	}
	if err := client.PutFloat("t", "r", "c", 7); err != nil {
		t.Fatal(err)
	}
	// Mutations are visible directly in the backing store.
	table, err := store.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	v, ok := table.GetFloat("r", "c")
	if !ok || v != 7 {
		t.Errorf("backing store value = %v, %v", v, ok)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t)
	boot := dialClient(t, addr)
	if err := boot.CreateTable("t", 0); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			for i := 0; i < 50; i++ {
				row := fmt.Sprintf("g%d-r%d", g, i)
				if err := client.PutFloat("t", row, "c", float64(i)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	cells, err := boot.Scan("t", kvstore.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 200 {
		t.Errorf("scan found %d cells, want 200", len(cells))
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := NewServer(kvstore.New())
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}
