package kvstore

import (
	"strings"
	"sync"
)

// scanCursor marks the last cell a previous page returned; collection
// resumes strictly after it. An inactive cursor means "start from the top".
type scanCursor struct {
	row    string
	col    string
	active bool
}

// collectLocked appends up to max matching cells to dst in (row, column)
// order, resuming after cur when it is active. Cell values are shared
// references into live store memory — value buffers are immutable once
// written (putLocked always allocates a fresh buffer), so the references
// stay valid and stable after t.mu is released, but callers handing them
// out must either copy (arenaCopyValues) or document the aliasing. Returns
// the extended slice, the summed value bytes of the appended cells, and
// whether collection stopped at max with (potentially) more cells ahead.
// max <= 0 means unbounded. Callers must hold t.mu for writing (the
// sorted-key caches rebuild lazily).
func (t *Table) collectLocked(opts ScanOptions, cur *scanCursor, max int, dst []Cell) ([]Cell, int64, bool) {
	rows := t.sortedRowKeysLocked()
	i := 0
	if cur != nil && cur.active {
		i = searchStrings(rows, cur.row)
	}
	var valueBytes int64
	for ; i < len(rows); i++ {
		row := rows[i]
		if opts.StartRow != "" && row < opts.StartRow {
			continue
		}
		if opts.EndRow != "" && row >= opts.EndRow {
			continue
		}
		if opts.RowPrefix != "" && !strings.HasPrefix(row, opts.RowPrefix) {
			continue
		}
		cols := t.rows[row]
		for _, col := range t.sortedColKeysLocked(row) {
			if opts.ColumnPrefix != "" && !strings.HasPrefix(col, opts.ColumnPrefix) {
				continue
			}
			if cur != nil && cur.active && row == cur.row && col <= cur.col {
				continue
			}
			versions := cols[col]
			v := versions[len(versions)-1]
			dst = append(dst, Cell{Row: row, Column: col, Version: v})
			valueBytes += int64(len(v.Value))
			if max > 0 && len(dst) >= max {
				if cur != nil {
					cur.row, cur.col, cur.active = row, col, true
				}
				return dst, valueBytes, true
			}
		}
	}
	return dst, valueBytes, false
}

// searchStrings is sort.SearchStrings without the package dependency knot:
// the first index at or after which x would sort.
func searchStrings(a []string, x string) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// arenaCopyValues replaces each cell's shared value reference with a copy
// carved out of one arena allocation sized for the whole batch — one malloc
// per scan page instead of one per cell. total must be the summed value
// lengths (as returned by collectLocked). Each copy is capacity-capped so
// appending to one cell's value can never scribble over its neighbour's.
func arenaCopyValues(cells []Cell, total int64) {
	arena := make([]byte, 0, total)
	for i := range cells {
		off := len(arena)
		arena = append(arena, cells[i].Version.Value...)
		cells[i].Version.Value = arena[off:len(arena):len(arena)]
	}
}

// defaultScanPage is the page size used when callers pass pageSize <= 0,
// and the capacity of pooled page slices. It matches wire.ScanChunkCells so
// the kvnet server's streamed chunks recycle pages without reallocating.
const defaultScanPage = 256

// scanPagePool recycles page slices between ScanPagesShared calls.
var scanPagePool = sync.Pool{New: func() any {
	s := make([]Cell, 0, defaultScanPage)
	return &s
}}

// ScanPages streams the latest version of every matching cell in (row,
// column) order, invoking fn with consecutive pages of up to pageSize
// cells (pageSize <= 0 uses a default). The final invocation — there is
// always at least one, possibly with an empty page — has final=true. Pages
// are independently allocated with arena-backed value copies; fn may
// retain them.
//
// Unlike Scan, the table lock is released between pages (the HBase scanner
// contract the paper's store substrate provides): a scan interleaved with
// writes sees each page atomically but not the whole result set. Cells
// already returned are never revisited; cells inserted behind the cursor
// are missed.
func (t *Table) ScanPages(opts ScanOptions, pageSize int, fn func(cells []Cell, final bool) error) error {
	return t.scanPages(opts, pageSize, false, fn)
}

// ScanPagesShared is ScanPages without the defensive copies, for hot paths
// that serialize cells and move on (the kvnet streaming-scan server): cell
// values alias live store memory (immutable once written) and the page
// slice is pooled and reused across invocations. fn must not mutate the
// values and must not retain the page or any cell value past its return.
func (t *Table) ScanPagesShared(opts ScanOptions, pageSize int, fn func(cells []Cell, final bool) error) error {
	return t.scanPages(opts, pageSize, true, fn)
}

func (t *Table) scanPages(opts ScanOptions, pageSize int, shared bool, fn func(cells []Cell, final bool) error) error {
	if pageSize <= 0 {
		pageSize = defaultScanPage
	}
	ins := t.store.ins.Load()
	sp := ins.opSpan("scan", t.name)

	var pagePtr *[]Cell
	var page []Cell
	if shared && pageSize <= defaultScanPage {
		pagePtr = scanPagePool.Get().(*[]Cell)
		page = (*pagePtr)[:0]
	}

	var (
		cur      scanCursor
		returned int
		total    int64
		err      error
	)
	for {
		max := pageSize
		if opts.Limit > 0 && opts.Limit-returned < max {
			max = opts.Limit - returned
		}
		dst := page[:0]
		if !shared {
			dst = nil // fn may retain copy-variant pages; never reuse them
		}
		var pageBytes int64
		var more bool
		t.mu.Lock()
		page, pageBytes, more = t.collectLocked(opts, &cur, max, dst)
		t.mu.Unlock()
		if !shared {
			arenaCopyValues(page, pageBytes)
		}
		returned += len(page)
		total += pageBytes
		if opts.Limit > 0 && returned >= opts.Limit {
			more = false
		}
		err = fn(page, !more)
		if err != nil || !more {
			break
		}
	}

	if pagePtr != nil {
		page = page[:cap(page)]
		clear(page) // drop value references so the pool does not pin them
		*pagePtr = page[:0]
		scanPagePool.Put(pagePtr)
	}
	if ins != nil {
		ins.scans.Inc()
		ins.scanCells.Add(uint64(returned))
	}
	if sp != nil {
		sp.SetBytes(total)
		if err != nil {
			sp.EndErr(err)
		} else {
			sp.End()
		}
	}
	return err
}
