package kvstore

import (
	"testing"

	"smartflux/internal/obs"
)

func TestStoreInstrumented(t *testing.T) {
	store := New()
	reg := obs.NewRegistry()
	store.Instrument(obs.New(reg))

	table, err := store.CreateTable("t", TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := table.PutFloat("r", "c", float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	table.Get("r", "c")
	table.Get("r", "missing")
	if err := table.Delete("r", "c"); err != nil {
		t.Fatal(err)
	}
	if err := table.Apply(NewBatch().Put("a", "x", EncodeFloat(1)).Put("b", "x", EncodeFloat(2)).Delete("a", "x")); err != nil {
		t.Fatal(err)
	}
	if err := table.PutFloat("q", "c", 9); err != nil {
		t.Fatal(err)
	}
	cells := table.Scan(ScanOptions{})

	snap := reg.Snapshot()
	// 4 puts + 2 batch puts + 1 final put = 7 mutations.
	if got := snap.Counters[`smartflux_kvstore_ops_total{op="mutate"}`]; got != 7 {
		t.Errorf("mutations = %d, want 7", got)
	}
	// 1 direct delete + 1 batch delete.
	if got := snap.Counters[`smartflux_kvstore_ops_total{op="delete"}`]; got != 2 {
		t.Errorf("deletes = %d, want 2", got)
	}
	if got := snap.Counters[`smartflux_kvstore_ops_total{op="get"}`]; got != 2 {
		t.Errorf("gets = %d, want 2", got)
	}
	if got := snap.Counters[`smartflux_kvstore_ops_total{op="scan"}`]; got != 1 {
		t.Errorf("scans = %d, want 1", got)
	}
	if got := snap.Counters["smartflux_kvstore_scan_cells_total"]; got != uint64(len(cells)) {
		t.Errorf("scan cells = %d, want %d", got, len(cells))
	}
}

func TestStoreInstrumentNilDetach(t *testing.T) {
	store := New()
	reg := obs.NewRegistry()
	store.Instrument(obs.New(reg))
	table, err := store.CreateTable("t", TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := table.PutFloat("r", "c", 1); err != nil {
		t.Fatal(err)
	}
	store.Instrument(nil)
	if err := table.PutFloat("r", "c", 2); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[`smartflux_kvstore_ops_total{op="mutate"}`]; got != 1 {
		t.Errorf("mutations after detach = %d, want 1", got)
	}
}
