// Distributed store: the kvnet TCP layer that lets workflow steps in
// separate processes share data containers, mirroring the paper's deployment
// where steps interact with a remote HBase cluster through intercepted
// client libraries (§4.2).
//
// This example starts an in-process store server, connects two clients that
// play the roles of a producer step (writing sensor readings) and a consumer
// step (aggregating them), and shows a mutation observer on the server side
// — the hook SmartFlux's Monitoring component uses to compute input impacts.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"strconv"
	"sync/atomic"

	"smartflux"
	"smartflux/internal/kvstore/kvnet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Server side: the shared store plus a Monitoring-style observer.
	store := smartflux.NewStore()
	server := kvnet.NewServer(store)
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer func() { _ = server.Close() }() // best-effort teardown at exit
	fmt.Println("store serving on", addr)

	table, err := store.CreateTable("readings", smartflux.TableOptions{})
	if err != nil {
		return err
	}
	var observed atomic.Int64
	table.Subscribe(observerFunc(func(m smartflux.Mutation) {
		observed.Add(1)
	}))

	// Producer process: writes a wave of readings over TCP.
	producer, err := kvnet.Dial(addr)
	if err != nil {
		return err
	}
	defer func() { _ = producer.Close() }()
	for wave := 0; wave < 3; wave++ {
		for i := 0; i < 4; i++ {
			row := "sensor" + strconv.Itoa(i)
			value := 20 + float64(wave) + float64(i)/2
			if err := producer.PutFloat("readings", row, "temp", value); err != nil {
				return err
			}
		}
		fmt.Printf("producer: wave %d written\n", wave)
	}

	// Consumer process: scans and aggregates over its own connection.
	consumer, err := kvnet.Dial(addr)
	if err != nil {
		return err
	}
	defer func() { _ = consumer.Close() }()
	cells, err := consumer.Scan("readings", smartflux.ScanOptions{})
	if err != nil {
		return err
	}
	var sum float64
	var n int
	for _, c := range cells {
		if v, err := smartflux.DecodeFloat(c.Version.Value); err == nil {
			sum += v
			n++
		}
	}
	fmt.Printf("consumer: mean of %d readings = %.2f\n", n, sum/float64(n))
	fmt.Printf("server: observer saw %d mutations (the Monitoring hook)\n", observed.Load())
	return nil
}

// observerFunc adapts a closure to the store Observer interface.
type observerFunc func(smartflux.Mutation)

func (f observerFunc) OnMutation(m smartflux.Mutation) { f(m) }
