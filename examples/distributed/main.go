// Distributed store: the kvnet TCP layer that lets workflow steps in
// separate processes share data containers, mirroring the paper's deployment
// where steps interact with a remote HBase cluster through intercepted
// client libraries (§4.2).
//
// This example starts an in-process store server, connects two clients that
// play the roles of a producer step (writing sensor readings) and a consumer
// step (aggregating them), and shows a mutation observer on the server side
// — the hook SmartFlux's Monitoring component uses to compute input impacts.
// Midway through the producer's run the server is killed and restarted on
// the same address: the producer's retrying client reconnects transparently
// and no reading is lost or written twice (see DESIGN.md §10).
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"strconv"
	"sync/atomic"
	"time"

	"smartflux"
	"smartflux/internal/kvstore/kvnet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// startServer brings up a kvnet server over the shared store.
func startServer(store *smartflux.Store, addr string) (*kvnet.Server, string, error) {
	server := kvnet.NewServer(store)
	got, err := server.Listen(addr)
	if err != nil {
		return nil, "", err
	}
	return server, got, nil
}

func run() error {
	// Server side: the shared store plus a Monitoring-style observer. The
	// store (and its observer subscription) outlives any one server
	// process, as the HBase cluster would.
	store := smartflux.NewStore()
	table, err := store.EnsureTable("readings", smartflux.TableOptions{})
	if err != nil {
		return err
	}
	var observed atomic.Int64
	table.Subscribe(observerFunc(func(m smartflux.Mutation) {
		observed.Add(1)
	}))
	server, addr, err := startServer(store, "127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Println("store serving on", addr)

	// Both clients retry with backoff and reconnect on failure, so a server
	// restart between (or during) their requests is invisible to them.
	clientCfg := kvnet.ClientConfig{
		DialTimeout:  2 * time.Second,
		MaxRetries:   20,
		RetryBackoff: 20 * time.Millisecond,
		RetrySeed:    1,
	}

	// Producer process: writes a wave of readings over TCP.
	producer, err := kvnet.DialConfig(addr, clientCfg)
	if err != nil {
		return err
	}
	defer func() { _ = producer.Close() }()
	for wave := 0; wave < 3; wave++ {
		if wave == 1 {
			// Simulate a store-node crash mid-run: kill the server and bring
			// a fresh one up on the same address over the same backing
			// store. The producer's next Put fails, reconnects and retries;
			// server-side request dedup keeps every write exactly-once.
			if err := server.Close(); err != nil {
				return err
			}
			fmt.Println("server: killed mid-run, restarting on", addr)
			server, _, err = startServer(store, addr)
			if err != nil {
				return err
			}
		}
		for i := 0; i < 4; i++ {
			row := "sensor" + strconv.Itoa(i)
			value := 20 + float64(wave) + float64(i)/2
			if err := producer.PutFloat("readings", row, "temp", value); err != nil {
				return err
			}
		}
		fmt.Printf("producer: wave %d written\n", wave)
	}
	defer func() { _ = server.Close() }() // best-effort teardown at exit

	// Consumer process: scans and aggregates over its own connection.
	consumer, err := kvnet.DialConfig(addr, clientCfg)
	if err != nil {
		return err
	}
	defer func() { _ = consumer.Close() }()
	cells, err := consumer.Scan("readings", smartflux.ScanOptions{})
	if err != nil {
		return err
	}
	var sum float64
	var n int
	for _, c := range cells {
		if v, err := smartflux.DecodeFloat(c.Version.Value); err == nil {
			sum += v
			n++
		}
	}
	fmt.Printf("consumer: mean of %d readings = %.2f\n", n, sum/float64(n))
	fmt.Printf("server: observer saw %d mutations (the Monitoring hook)\n", observed.Load())
	return nil
}

// observerFunc adapts a closure to the store Observer interface.
type observerFunc func(smartflux.Mutation)

func (f observerFunc) OnMutation(m smartflux.Mutation) { f(m) }
