// Distributed store: a sharded, replicated kvstore cluster that lets
// workflow steps in separate processes share data containers, mirroring the
// paper's deployment where steps interact with a remote HBase cluster
// through intercepted client libraries (§4.2).
//
// This example starts a 3-shard cluster — each shard a primary node with an
// attached follower receiving its replication stream — and connects two
// clients playing the roles of a producer step (writing sensor readings)
// and a consumer step (aggregating them with a scatter-gather scan merged
// in key order). Midway through the producer's run one shard's primary is
// killed: the cluster client probes it, promotes the follower and retries,
// so no acked reading is lost or written twice. Afterwards the dead node
// rejoins as a follower of the promoted primary and catches up from its
// replication-log cursor (see DESIGN.md §14).
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"net"
	"strconv"
	"time"

	"smartflux"
	"smartflux/internal/fault"
	"smartflux/internal/kvstore/cluster"
	"smartflux/internal/kvstore/kvnet"
)

const shards = 3

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Server side: three primaries behind a fault injector (so one can be
	// killed on cue) and a follower attached to each — six "processes".
	inj := fault.New(fault.Policy{})
	var primaries, followers []*cluster.Node
	defer func() {
		// Teardown order mirrors startup in reverse; Close detaches the
		// replication link before stopping the server, so shutdown never
		// strands a follower mid-catch-up.
		for _, n := range followers {
			_ = n.Close()
		}
		for _, n := range primaries {
			_ = n.Close()
		}
	}()
	addrs := make([]string, 0, shards)
	for s := 0; s < shards; s++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		n, err := cluster.NewNode(cluster.NodeConfig{Listener: fault.WrapListener(ln, inj)})
		if err != nil {
			return err
		}
		primaries = append(primaries, n)
		addrs = append(addrs, n.Addr())
		fmt.Printf("shard %d primary serving on %s\n", s, n.Addr())
	}
	m := cluster.NewMap(addrs)
	for s := 0; s < shards; s++ {
		f, err := cluster.NewNode(cluster.NodeConfig{})
		if err != nil {
			return err
		}
		followers = append(followers, f)
		if err := primaries[s].AttachFollower(f.Addr()); err != nil {
			return err
		}
		if err := m.SetReplica(s, f.Addr()); err != nil {
			return err
		}
	}

	// Client side: producer and consumer each hold their own cluster client,
	// as two separate step processes would. Dials go through the injector so
	// a killed primary refuses their reconnects too.
	clientCfg := cluster.Config{
		Map: m,
		Client: kvnet.ClientConfig{
			DialTimeout:  2 * time.Second,
			MaxRetries:   20,
			RetryBackoff: 20 * time.Millisecond,
			RetrySeed:    1,
			Dial:         fault.Dialer(inj),
		},
		ProbeRetries: 1,
		ProbeBackoff: 5 * time.Millisecond,
		OnFailover: func(shard int, from, to string) {
			fmt.Printf("cluster: shard %d failed over %s -> %s\n", shard, from, to)
		},
	}
	producer, err := cluster.New(clientCfg)
	if err != nil {
		return err
	}
	defer func() { _ = producer.Close() }()
	if err := producer.CreateTable("readings", 0); err != nil {
		return err
	}

	// Producer process: writes waves of readings, sharded by sensor row.
	for wave := 0; wave < 3; wave++ {
		if wave == 1 {
			// Kill shard 0's primary mid-run: live connections drop and
			// re-dials are refused, exactly like a crashed node. The
			// producer's next write to that shard probes the primary,
			// promotes the follower (which holds every acked write — the
			// primary ships each record before acking) and retries.
			inj.Partition(primaries[0].Addr())
			fmt.Printf("shard 0 primary killed mid-run (%s)\n", primaries[0].Addr())
		}
		for i := 0; i < 8; i++ {
			row := "sensor" + strconv.Itoa(i)
			value := 20 + float64(wave) + float64(i)/2
			if err := producer.PutFloat("readings", row, "temp", value); err != nil {
				return err
			}
		}
		fmt.Printf("producer: wave %d written\n", wave)
	}

	// Consumer process: a scatter-gather scan over all shards, merged in key
	// order, on its own client (it discovers the promotion independently).
	consumer, err := cluster.New(clientCfg)
	if err != nil {
		return err
	}
	defer func() { _ = consumer.Close() }()
	cells, err := consumer.Scan("readings", smartflux.ScanOptions{})
	if err != nil {
		return err
	}
	var sum float64
	var n int
	for _, c := range cells {
		if v, err := smartflux.DecodeFloat(c.Version.Value); err == nil {
			sum += v
			n++
		}
	}
	fmt.Printf("consumer: mean of %d readings = %.2f\n", n, sum/float64(n))

	// Rejoin: heal the partition and bring the dead node back — not as a
	// primary (the map moved on) but as a follower of the promoted one. Its
	// log diverges from nothing (it died as a clean primary), but the
	// promoted follower has since appended records it never saw, so it
	// resets and catches up from cursor zero.
	inj.Heal(primaries[0].Addr())
	newPrimaryAddr := producer.Map().Shards[0].Primary
	var newPrimary *cluster.Node
	for _, f := range followers {
		if f.Addr() == newPrimaryAddr {
			newPrimary = f
		}
	}
	if newPrimary == nil {
		return fmt.Errorf("promoted primary %s not found among followers", newPrimaryAddr)
	}
	rejoined := primaries[0]
	rejoined.Reset()
	if err := newPrimary.AttachFollower(rejoined.Addr()); err != nil {
		return err
	}
	pc, pcrc := newPrimary.Log().Status()
	rc, rcrc := rejoined.Log().Status()
	if pc != rc || pcrc != rcrc {
		return fmt.Errorf("rejoined node did not catch up: cursor %d/%x vs %d/%x", rc, rcrc, pc, pcrc)
	}
	fmt.Printf("shard 0 old primary rejoined as follower and caught up (%d records, crc %08x)\n", rc, rcrc)
	return nil
}
