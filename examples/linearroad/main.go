// Linear Road: the variable tolling workload of the paper's evaluation
// (§5.1, Figure 5), driven end to end through the public API.
//
// The program trains SmartFlux on 400 synchronous waves of traffic, then
// runs 400 adaptive waves, comparing resource usage and bound compliance
// against the synchronous and oracle schedules.
//
// Run with:
//
//	go run ./examples/linearroad [-bound 0.05] [-waves 400]
package main

import (
	"flag"
	"fmt"
	"log"

	"smartflux"
	"smartflux/workloads"
)

func main() {
	bound := flag.Float64("bound", 0.05, "maximum tolerated output error (maxε)")
	waves := flag.Int("waves", 400, "training and application waves")
	seed := flag.Int64("seed", 42, "deterministic seed")
	flag.Parse()

	build := workloads.LinearRoad(workloads.LinearRoadConfig{
		Seed:     *seed,
		MaxError: *bound,
	})
	res, err := smartflux.RunPipeline(build,
		[]smartflux.StepID{workloads.LinearRoadClassify},
		smartflux.PipelineConfig{
			TrainWaves: *waves,
			ApplyWaves: *waves,
			Session: smartflux.SessionConfig{
				Seed: *seed + 7,
				// The paper optimizes the LRB classifier for recall
				// (§5.2): lower threshold + positive oversampling.
				Thresholds:     []float64{0.15},
				PositiveWeight: 14,
			},
		})
	if err != nil {
		log.Fatal(err)
	}

	macro := res.Test.Macro()
	fmt.Printf("Linear Road @ %.0f%% bound\n", *bound*100)
	fmt.Printf("  test phase: accuracy %.2f  precision %.2f  recall %.2f  (10-fold CV)\n",
		macro.Accuracy, macro.Precision, macro.Recall)
	fmt.Printf("  executions: smartflux %d, optimal %d, sync %d  (%.0f%% saved)\n",
		res.Apply.TotalLiveExecutions(), res.Apply.TotalOptimalExecutions(),
		res.Apply.TotalSyncExecutions(), res.Apply.SavingsRatio()*100)

	report := res.Apply.Reports[workloads.LinearRoadClassify]
	conf := report.Confidence()
	fmt.Printf("  congestion classification: %d violations in %d waves (confidence %.1f%%)\n",
		report.ViolationCount(), len(report.Measured), conf[len(conf)-1]*100)
}
