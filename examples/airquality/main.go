// Air quality: the AQHI sensor-network workload of the paper's evaluation
// (§5.1, Figure 6), showing adaptive execution plus live index readings.
//
// After training, the program runs one simulated week (168 hourly waves)
// adaptively and prints the evolving health-risk classification along with
// the execution savings.
//
// Run with:
//
//	go run ./examples/airquality [-bound 0.10]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"smartflux"
	"smartflux/workloads"
)

func main() {
	bound := flag.Float64("bound", 0.10, "maximum tolerated output error (maxε)")
	seed := flag.Int64("seed", 42, "deterministic seed")
	flag.Parse()

	build := workloads.AirQuality(workloads.AirQualityConfig{
		Seed:     *seed,
		MaxError: *bound,
	})

	harness, err := smartflux.NewHarness(build, []smartflux.StepID{workloads.AirQualityIndex})
	if err != nil {
		log.Fatal(err)
	}
	session := smartflux.NewSession(smartflux.SessionConfig{
		Seed:           *seed + 7,
		Thresholds:     []float64{0.15},
		PositiveWeight: 14,
	})

	// Training: two synchronous weeks.
	train, err := harness.Run(336, session)
	if err != nil {
		log.Fatal(err)
	}
	for w := range train.RefImpacts {
		session.ObserveTrainingWave(train.RefImpacts[w], train.RefLabels[w])
	}
	if _, err := session.Train(); err != nil {
		log.Fatal(err)
	}

	// Application: one adaptive week, reporting the index daily.
	apply, err := harness.Run(168, session)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("AQHI @ %.0f%% bound — one adaptive week\n", *bound*100)
	live := harness.Live()
	state := live.OutputState(workloads.AirQualityIndex)
	keys := make([]string, 0, len(state))
	for key := range state {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		v := state[key]
		fmt.Printf("  final %s = %.2f (%s risk)\n", key, v, workloads.AirQualityRiskClass(v))
	}
	fmt.Printf("  executions: %d of %d sync (%.0f%% saved)\n",
		apply.TotalLiveExecutions(), apply.TotalSyncExecutions(),
		apply.SavingsRatio()*100)

	report := apply.Reports[workloads.AirQualityIndex]
	conf := report.Confidence()
	fmt.Printf("  index bound compliance: %d violations in %d waves (confidence %.1f%%)\n",
		report.ViolationCount(), len(report.Measured), conf[len(conf)-1]*100)
}
