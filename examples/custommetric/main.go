// Custom metrics: the §4.2 update/compute API.
//
// The paper lets applications supply their own input-impact and output-error
// functions. This example defines a weighted impact metric (large elements
// matter more) and a max-deviation error metric, registers them on a small
// pipeline and runs it through the harness under a seq-3 policy to show the
// metrics at work without any learning machinery.
//
// Run with:
//
//	go run ./examples/custommetric
package main

import (
	"fmt"
	"log"
	"math"
	"strconv"

	"smartflux"
)

// weightedImpact implements smartflux.Metric (the §4.2 update/compute API):
// each modified element contributes its absolute change scaled by its
// magnitude, so changes to large elements dominate.
type weightedImpact struct {
	sum float64
}

// Update is called once per modified element.
func (m *weightedImpact) Update(cur, prev float64) {
	weight := math.Max(math.Abs(cur), math.Abs(prev))
	m.sum += math.Abs(cur-prev) * weight
}

// Compute returns the overall impact.
func (m *weightedImpact) Compute(ctx smartflux.MetricContext) float64 {
	if ctx.Total == 0 {
		return 0
	}
	return m.sum / float64(ctx.Total)
}

// Reset clears state for reuse.
func (m *weightedImpact) Reset() { m.sum = 0 }

// maxDeviation is an error metric returning the largest relative
// per-element deviation.
type maxDeviation struct {
	max float64
}

func (m *maxDeviation) Update(cur, prev float64) {
	denom := math.Abs(prev)
	if denom < 1 {
		denom = 1
	}
	if d := math.Abs(cur-prev) / denom; d > m.max {
		m.max = d
	}
}

func (m *maxDeviation) Compute(smartflux.MetricContext) float64 { return m.max }

func (m *maxDeviation) Reset() { m.max = 0 }

var (
	_ smartflux.Metric = (*weightedImpact)(nil)
	_ smartflux.Metric = (*maxDeviation)(nil)
)

func main() {
	// Trackers are the Monitoring component's bookkeeping: they hold the
	// baseline a metric compares against. Feed them snapshots per wave.
	impact := smartflux.NewMetricTracker(
		func() smartflux.Metric { return &weightedImpact{} },
		smartflux.ModeAccumulate,
	)
	errTracker := smartflux.NewMetricTracker(
		func() smartflux.Metric { return &maxDeviation{} },
		smartflux.ModeCancellation,
	)

	store := smartflux.NewStore()
	table, err := store.CreateTable("readings", smartflux.TableOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("wave  weighted-impact  max-deviation  executed")
	for wave := 0; wave < 12; wave++ {
		// Write a wave of data: element i drifts, element 9 spikes at
		// wave 6.
		batch := smartflux.NewBatch()
		for i := 0; i < 10; i++ {
			v := float64(10+i) + 0.3*float64(wave)
			if i == 9 && wave >= 6 {
				v *= 3
			}
			batch.PutFloat("r"+strconv.Itoa(i), "v", v)
		}
		if err := table.Apply(batch); err != nil {
			log.Fatal(err)
		}

		snapshot := table.ScanFloats(smartflux.ScanOptions{})
		iota := impact.Observe(snapshot)
		eps := errTracker.Observe(table.ScanFloats(smartflux.ScanOptions{}))

		// A hand-rolled QoD rule: execute when the custom error metric
		// exceeds 20%, then reset both baselines — exactly what the
		// QoD engine does with the built-in metrics.
		executed := eps > 0.2
		if executed {
			impact.Commit(table.ScanFloats(smartflux.ScanOptions{}))
			errTracker.Commit(table.ScanFloats(smartflux.ScanOptions{}))
		}
		fmt.Printf("%4d  %15.2f  %13.3f  %v\n", wave, iota, eps, executed)
	}
}
