// Quickstart: a minimal three-step SmartFlux pipeline.
//
// A sensor feed writes temperatures, an aggregation step averages them, and
// an alert step classifies the average. The aggregation and alert steps
// tolerate a 10% output error, so once the model is trained SmartFlux skips
// their execution whenever the input changed too little to matter.
//
// Run with:
//
//	go run ./examples/quickstart
//
// Pass -trace-out decisions.jsonl to log every triggering decision (one JSON
// line per wave and gated step), -span-out spans.jsonl to record the causal
// span tree for offline analysis with `go run ./cmd/sftrace`, and
// -obs-addr 127.0.0.1:8080 to watch live metrics on /metrics while it runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"sort"
	"strconv"

	"smartflux"
)

const (
	tableRaw    = "raw"
	tableAvg    = "avg"
	tableAlert  = "alert"
	sensorCount = 50
	trainWaves  = 400
	applyWaves  = 150
)

// build constructs one instance of the pipeline. The harness calls it twice
// (live + synchronous reference), so the generator must be deterministic.
func build() (*smartflux.Workflow, *smartflux.Store, error) {
	store := smartflux.NewStore()
	rng := rand.New(rand.NewSource(1))

	wf := smartflux.NewWorkflow("quickstart")
	steps := []*smartflux.Step{
		{
			ID:      "ingest",
			Source:  true,
			Outputs: []smartflux.Container{{Table: tableRaw}},
			Proc: smartflux.ProcessorFunc(func(ctx *smartflux.Context) error {
				t, err := ctx.Table(tableRaw)
				if err != nil {
					return err
				}
				batch := smartflux.NewBatch()
				for i := 0; i < sensorCount; i++ {
					// Diurnal cycle + a heat burst every ~70 waves.
					v := 20 + 4*math.Sin(2*math.Pi*float64(ctx.Wave)/48)
					if ctx.Wave%70 > 55 {
						v += 8
					}
					batch.PutFloat("s"+strconv.Itoa(i), "temp", v+rng.NormFloat64())
				}
				return t.Apply(batch)
			}),
		},
		{
			ID:      "aggregate",
			Inputs:  []smartflux.Container{{Table: tableRaw}},
			Outputs: []smartflux.Container{{Table: tableAvg}},
			QoD:     smartflux.QoD{MaxError: 0.1, Mode: smartflux.ModeAccumulate},
			Proc: smartflux.ProcessorFunc(func(ctx *smartflux.Context) error {
				raw, err := ctx.Table(tableRaw)
				if err != nil {
					return err
				}
				out, err := ctx.Table(tableAvg)
				if err != nil {
					return err
				}
				var sum float64
				var n int
				for _, c := range raw.Scan(smartflux.ScanOptions{}) {
					if v, err := smartflux.DecodeFloat(c.Version.Value); err == nil {
						sum += v
						n++
					}
				}
				if n == 0 {
					return nil
				}
				return out.PutFloat("region", "avg", sum/float64(n))
			}),
		},
		{
			ID:      "alert",
			Inputs:  []smartflux.Container{{Table: tableAvg}},
			Outputs: []smartflux.Container{{Table: tableAlert}},
			QoD:     smartflux.QoD{MaxError: 0.1, Mode: smartflux.ModeAccumulate},
			Proc: smartflux.ProcessorFunc(func(ctx *smartflux.Context) error {
				avg, err := ctx.Table(tableAvg)
				if err != nil {
					return err
				}
				out, err := ctx.Table(tableAlert)
				if err != nil {
					return err
				}
				v, _ := avg.GetFloat("region", "avg")
				// Alert score scales linearly with the regional
				// average above a 15 °C floor.
				level := 5 + 2*(v-15)
				return out.PutFloat("region", "level", level)
			}),
		},
	}
	for _, s := range steps {
		if err := wf.AddStep(s); err != nil {
			return nil, nil, err
		}
	}
	if err := wf.Finalize(); err != nil {
		return nil, nil, err
	}
	return wf, store, nil
}

func main() {
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /trace/tail and /trace/spans on this address")
	traceOut := flag.String("trace-out", "", "write decision-trace JSON lines to this file")
	spanOut := flag.String("span-out", "", "append causal spans (plus decision events) as JSON lines to this file, readable by sftrace")
	flag.Parse()

	var (
		registry *smartflux.MetricsRegistry
		observer *smartflux.RunObserver
	)
	if *obsAddr != "" || *traceOut != "" || *spanOut != "" {
		registry = smartflux.NewMetricsRegistry()
		var sinks []smartflux.TraceSink
		var spanSinks []smartflux.SpanSink
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				log.Fatal(err)
			}
			defer func() {
				// A failed close can silently truncate the JSONL trace.
				if err := f.Close(); err != nil {
					log.Printf("trace-out close: %v", err)
				}
			}()
			sinks = append(sinks, smartflux.NewJSONLTraceSink(f))
		}
		if *spanOut != "" {
			f, err := os.Create(*spanOut)
			if err != nil {
				log.Fatal(err)
			}
			defer func() {
				if err := f.Close(); err != nil {
					log.Printf("span-out close: %v", err)
				}
			}()
			// One JSONL sink carries both record kinds; sftrace splits them
			// back apart by the "type" field.
			jsonl := smartflux.NewJSONLTraceSink(f)
			sinks = append(sinks, jsonl)
			spanSinks = append(spanSinks, jsonl)
		}
		if *obsAddr != "" {
			ring := smartflux.NewTraceRing(2048)
			sinks = append(sinks, ring)
			spanRing := smartflux.NewSpanRing(4096)
			spanSinks = append(spanSinks, spanRing)
			srv, err := smartflux.StartDebugServer(*obsAddr, registry, ring, spanRing)
			if err != nil {
				log.Fatal(err)
			}
			defer func() { _ = srv.Close() }() // best-effort teardown at exit
			fmt.Printf("observability on http://%s\n", srv.Addr())
		}
		observer = smartflux.NewRunObserver(registry, sinks...).WithSpanSinks(spanSinks...)
	}

	res, err := smartflux.RunPipeline(build, nil, smartflux.PipelineConfig{
		TrainWaves: trainWaves,
		ApplyWaves: applyWaves,
		Session: smartflux.SessionConfig{
			Seed:           7,
			Thresholds:     []float64{0.15},
			PositiveWeight: 12,
		},
		Obs: observer,
	})
	if err != nil {
		log.Fatal(err)
	}

	macro := res.Test.Macro()
	fmt.Printf("test phase (10-fold CV): accuracy %.2f, recall %.2f\n",
		macro.Accuracy, macro.Recall)
	fmt.Printf("application phase: %d/%d gated executions (%.0f%% saved)\n",
		res.Apply.TotalLiveExecutions(), res.Apply.TotalSyncExecutions(),
		res.Apply.SavingsRatio()*100)
	steps := make([]smartflux.StepID, 0, len(res.Apply.Reports))
	for step := range res.Apply.Reports {
		steps = append(steps, step)
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i] < steps[j] })
	for _, step := range steps {
		report := res.Apply.Reports[step]
		conf := report.Confidence()
		fmt.Printf("step %s: %d bound violations in %d waves (confidence %.1f%%)\n",
			step, report.ViolationCount(), applyWaves, conf[len(conf)-1]*100)
	}
	if registry != nil {
		snap := registry.Snapshot()
		fmt.Printf("decisions: %d exec, %d skip; p95 decision latency %.1fµs\n",
			snap.Counters[`smartflux_engine_decisions_total{verdict="exec"}`],
			snap.Counters[`smartflux_engine_decisions_total{verdict="skip"}`],
			snap.Histograms["smartflux_engine_decision_latency_seconds"].P95*1e6)
	}
}
