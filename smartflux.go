// Package smartflux is a middleware framework for adaptive execution of
// continuous, data-intensive workflows, reproducing "Adaptive Execution of
// Continuous and Data-intensive Workflows with Machine Learning" (Esteves,
// Galhardas, Veiga — Middleware '18).
//
// Workflows are DAGs of processing steps that communicate through data
// containers in a columnar key-value store. Instead of re-executing every
// step on every wave of input (the Synchronous Data-Flow model), SmartFlux
// learns — with a multi-label Random Forest — how each step's input impact
// (ι) relates to the output error (ε) incurred by skipping it, and triggers
// a step only when its user-specified error bound (maxε) would otherwise be
// exceeded. The result is substantial resource savings at a bounded,
// probabilistically guaranteed output deviation.
//
// # Quick start
//
// Build a workflow, declare Quality-of-Data bounds on the steps that may be
// skipped, and run the training → application lifecycle:
//
//	wf := smartflux.NewWorkflow("pipeline")
//	wf.AddStep(&smartflux.Step{
//		ID:      "ingest",
//		Source:  true,
//		Outputs: []smartflux.Container{{Table: "raw"}},
//		Proc:    smartflux.ProcessorFunc(ingest),
//	})
//	wf.AddStep(&smartflux.Step{
//		ID:      "aggregate",
//		Inputs:  []smartflux.Container{{Table: "raw"}},
//		Outputs: []smartflux.Container{{Table: "agg"}},
//		QoD:     smartflux.QoD{MaxError: 0.1},
//		Proc:    smartflux.ProcessorFunc(aggregate),
//	})
//	wf.Finalize()
//
// See the examples/ directory for complete programs and internal/experiments
// for the paper's full evaluation.
package smartflux

import (
	"io"

	"smartflux/internal/core"
	"smartflux/internal/durable"
	"smartflux/internal/engine"
	"smartflux/internal/kvstore"
	"smartflux/internal/kvstore/kvnet"
	"smartflux/internal/metric"
	"smartflux/internal/ml"
	"smartflux/internal/obs"
	"smartflux/internal/workflow"
)

// Storage layer: the versioned columnar key-value store steps communicate
// through (an embedded HBase stand-in).
type (
	// Store is a collection of named tables with a shared logical clock.
	Store = kvstore.Store
	// Table is a sparse sorted map of (row, column) to versioned values.
	Table = kvstore.Table
	// Batch is an atomically applied set of mutations.
	Batch = kvstore.Batch
	// Mutation is a single change delivered to observers.
	Mutation = kvstore.Mutation
	// Observer receives mutations applied to a table.
	Observer = kvstore.Observer
	// Cell is a fully qualified cell returned by scans.
	Cell = kvstore.Cell
	// ScanOptions selects cells for Table.Scan.
	ScanOptions = kvstore.ScanOptions
	// TableOptions configures table creation.
	TableOptions = kvstore.TableOptions
)

// Workflow model (paper §2).
type (
	// Workflow is a DAG of processing steps.
	Workflow = workflow.Workflow
	// Step is one processing step with its QoD annotation.
	Step = workflow.Step
	// StepID identifies a step.
	StepID = workflow.StepID
	// Container references a data container (table + column prefix).
	Container = workflow.Container
	// QoD is a step's Quality-of-Data configuration.
	QoD = workflow.QoD
	// Context is passed to step processors.
	Context = workflow.Context
	// Processor is a step's computation.
	Processor = workflow.Processor
	// ProcessorFunc adapts a function to Processor.
	ProcessorFunc = workflow.ProcessorFunc
	// Spec is the serializable workflow description.
	Spec = workflow.Spec
	// Registry maps processor names for spec building.
	Registry = workflow.Registry
)

// Execution engine.
type (
	// BuildFunc constructs one fresh instance of a workload.
	BuildFunc = engine.BuildFunc
	// Decider is a triggering policy consulted per wave and step.
	Decider = engine.Decider
	// Harness pairs a live and a synchronous reference instance.
	Harness = engine.Harness
	// HarnessConfig configures harness construction (parallelism).
	HarnessConfig = engine.HarnessConfig
	// InstanceConfig configures a standalone instance.
	InstanceConfig = engine.InstanceConfig
	// Instance executes one workflow wave by wave.
	Instance = engine.Instance
	// Result aggregates a harness run.
	Result = engine.Result
	// StepReport carries per-wave error measurements.
	StepReport = engine.StepReport
)

// Learning layer (paper §3).
type (
	// Session is the QoD engine: knowledge base + predictor + lifecycle.
	Session = core.Session
	// SessionConfig configures a session.
	SessionConfig = core.Config
	// TestReport carries test-phase quality metrics.
	TestReport = core.TestReport
	// KnowledgeBase stores training tuples.
	KnowledgeBase = core.KnowledgeBase
	// Predictor is the trained multi-label model.
	Predictor = core.Predictor
	// PipelineConfig configures an end-to-end lifecycle run.
	PipelineConfig = core.PipelineConfig
	// PipelineResult aggregates an end-to-end run.
	PipelineResult = core.PipelineResult
	// Classifier is a binary classifier usable as a session factory.
	Classifier = ml.Classifier
)

// Metrics (paper §2.1-2.2, §4.2).
type (
	// Metric is the user-extensible impact/error metric API.
	Metric = metric.Metric
	// MetricContext carries container aggregates to Metric.Compute.
	MetricContext = metric.Context
	// MetricFactory creates fresh Metric instances.
	MetricFactory = metric.Factory
	// Mode selects baseline semantics (accumulate vs cancellation).
	Mode = metric.Mode
	// State is a snapshot of a container's numeric contents.
	State = metric.State
	// MetricTracker holds a metric's baseline across waves (the
	// Monitoring component's per-container bookkeeping).
	MetricTracker = metric.Tracker
)

// NewMetricTracker creates a tracker that applies a (possibly custom §4.2)
// metric across waves under the given baseline mode.
func NewMetricTracker(factory MetricFactory, mode Mode) *MetricTracker {
	return metric.NewTracker(factory, mode)
}

// ParseMetricDSL compiles a metric expression (the high-level DSL the paper
// proposes in §4.2) into a metric factory, e.g.
// "sqrt(sum(sqdelta)/m)" or "sum(absdelta)*m/(baselinesum*n)".
// Expressions are also accepted anywhere a built-in metric name is, with
// the "dsl:" prefix (QoD.ImpactFunc, QoD.ErrorFunc, workflow specs).
func ParseMetricDSL(expr string) (MetricFactory, error) {
	return metric.ParseDSL(expr)
}

// DriftDetector watches application-phase prediction quality and signals
// when the model should be retrained (§3.1's on-demand retraining).
type DriftDetector = core.DriftDetector

// NewDriftDetector creates a drift detector over a sliding window that
// signals when the disagreement rate exceeds threshold.
func NewDriftDetector(window int, threshold float64) *DriftDetector {
	return core.NewDriftDetector(window, threshold)
}

// Baseline modes.
const (
	// ModeCancellation compares against the state at the last execution.
	ModeCancellation = metric.ModeCancellation
	// ModeAccumulate accumulates per-wave deltas since the last execution.
	ModeAccumulate = metric.ModeAccumulate
)

// Built-in metric function names, usable in QoD and workflow specs.
const (
	FuncAbsoluteImpact = metric.FuncAbsoluteImpact
	FuncRelativeImpact = metric.FuncRelativeImpact
	FuncRelativeError  = metric.FuncRelativeError
	FuncRMSE           = metric.FuncRMSE
)

// Classifier names for SessionConfig.Classifier.
const (
	ClassifierRandomForest = core.ClassifierRandomForest
	ClassifierSVM          = core.ClassifierSVM
	ClassifierLogistic     = core.ClassifierLogistic
	ClassifierNaiveBayes   = core.ClassifierNaiveBayes
	ClassifierDecisionTree = core.ClassifierDecisionTree
	ClassifierMLP          = core.ClassifierMLP
	ClassifierKNN          = core.ClassifierKNN
)

// Observability (metrics registry + decision tracing + debug server).
//
// A RunObserver bundles a metrics registry with trace sinks; attach it with
// the Instrument method present on Harness, Instance, Session, Store and the
// kvnet Server, or via PipelineConfig.Obs. All hooks are no-ops when nothing
// is attached.
type (
	// MetricsRegistry is a lock-cheap registry of counters, gauges and
	// streaming histograms with Prometheus text exposition.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a registry's contents.
	MetricsSnapshot = obs.Snapshot
	// HistogramSnapshot summarizes one histogram (count, sum, quantiles).
	HistogramSnapshot = obs.HistogramSnapshot
	// RunObserver bundles a metrics registry and a decision tracer.
	RunObserver = obs.Observer
	// DecisionEvent is one traced triggering decision: the ι features, the
	// predicted label, the decider verdict, whether the step ran, and the
	// measured/predicted ε when known.
	DecisionEvent = obs.DecisionEvent
	// TraceSink receives decision events.
	TraceSink = obs.Sink
	// TraceRing is a fixed-capacity in-memory trace sink.
	TraceRing = obs.RingSink
	// JSONLTraceSink appends decision events as JSON lines. It is also a
	// SpanSink: spans and decision events interleave in one stream,
	// discriminated by the "type" field.
	JSONLTraceSink = obs.JSONLSink
	// DebugServer serves /metrics, /trace/tail, /trace/spans and pprof
	// over HTTP.
	DebugServer = obs.DebugServer
	// Span is one timed node of the causal run → wave → step → attempt →
	// op tree; see RunObserver.WithSpanSinks and DESIGN.md §12.
	Span = obs.Span
	// SpanEvent is the wire record of one completed span.
	SpanEvent = obs.SpanEvent
	// SpanSink receives completed spans.
	SpanSink = obs.SpanSink
	// SpanRing is a fixed-capacity in-memory span sink, doubling as the
	// crash flight recorder.
	SpanRing = obs.SpanRing
)

// Resilience sentinels, matchable with errors.Is through every layer's
// wrapping (see DESIGN.md §10 "Fault tolerance & degradation semantics").
var (
	// ErrStepTimeout marks a step execution attempt exceeding the
	// configured step timeout.
	ErrStepTimeout = engine.ErrStepTimeout
	// ErrNetClosed reports an operation on a kvnet client whose Close has
	// begun.
	ErrNetClosed = kvnet.ErrClosed
	// ErrNetTimeout reports a kvnet I/O deadline expiring; the underlying
	// net.Error stays reachable via errors.As.
	ErrNetTimeout = kvnet.ErrTimeout
)

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewRunObserver bundles a registry and trace sinks into an observer. Either
// part may be omitted: a nil registry records no metrics, zero sinks disable
// tracing.
func NewRunObserver(reg *MetricsRegistry, sinks ...TraceSink) *RunObserver {
	return obs.New(reg, sinks...)
}

// NewTraceRing creates an in-memory trace sink keeping the last capacity
// events.
func NewTraceRing(capacity int) *TraceRing { return obs.NewRingSink(capacity) }

// NewJSONLTraceSink creates a trace sink that writes one JSON object per
// event to w.
func NewJSONLTraceSink(w io.Writer) *JSONLTraceSink { return obs.NewJSONLSink(w) }

// NewSpanRing creates an in-memory span sink keeping the last capacity
// spans (a default bound when capacity <= 0). Attach it with
// RunObserver.WithSpanSinks; when attached it also serves as the crash
// flight recorder.
func NewSpanRing(capacity int) *SpanRing { return obs.NewSpanRing(capacity) }

// StartDebugServer serves /metrics (Prometheus text), /trace/tail (recent
// decision events from ring, which may be nil), /trace/spans (recent spans
// from spans, which may be nil), /healthz and /debug/pprof on addr. Pass
// "127.0.0.1:0" for an ephemeral port; the bound address is available via
// Addr().
func StartDebugServer(addr string, reg *MetricsRegistry, ring *TraceRing, spans *SpanRing) (*DebugServer, error) {
	return obs.StartDebugServer(addr, reg, ring, spans)
}

// NewStore creates an empty data store.
func NewStore() *Store { return kvstore.New() }

// NewWorkflow creates an empty workflow.
func NewWorkflow(name string) *Workflow { return workflow.New(name) }

// NewSession creates a SmartFlux session in the training phase.
func NewSession(cfg SessionConfig) *Session { return core.NewSession(cfg) }

// NewHarness builds live and reference instances of a workload. reportSteps
// selects the steps whose output error is measured (nil = the last gated
// step).
func NewHarness(build BuildFunc, reportSteps []StepID) (*Harness, error) {
	return engine.NewHarness(build, reportSteps)
}

// NewHarnessWithConfig is NewHarness with an explicit configuration, e.g. a
// per-wave Parallelism bound. Results are bit-identical across settings.
func NewHarnessWithConfig(build BuildFunc, reportSteps []StepID, cfg HarnessConfig) (*Harness, error) {
	return engine.NewHarnessWithConfig(build, reportSteps, cfg)
}

// NewInstance binds a finalized workflow to a store for wave-by-wave
// execution.
func NewInstance(wf *Workflow, store *Store) (*Instance, error) {
	return engine.NewInstance(wf, store, engine.InstanceConfig{})
}

// NewInstanceWithConfig is NewInstance with an explicit configuration.
func NewInstanceWithConfig(wf *Workflow, store *Store, cfg InstanceConfig) (*Instance, error) {
	return engine.NewInstance(wf, store, cfg)
}

// RunPipeline executes the full SmartFlux lifecycle: synchronous training,
// model construction with the test phase, then adaptive application.
func RunPipeline(build BuildFunc, reportSteps []StepID, cfg PipelineConfig) (*PipelineResult, error) {
	return core.RunPipeline(build, reportSteps, cfg)
}

// Crash durability (DESIGN.md §11): every kvstore mutation is written to a
// CRC-checksummed write-ahead log, every completed wave commits a full
// harness + session checkpoint, and periodic snapshots compact the log.
// After a crash, ResumePipeline reconstructs the stores and the learning
// state from the latest snapshot plus the WAL tail and continues the run —
// bit-identically to an execution that never crashed.
type (
	// DurableOptions configures the durability directory, snapshot cadence
	// and fsync policy of a durable run.
	DurableOptions = core.DurableOptions
	// DurableRunInfo reports recovery and WAL statistics of a durable run.
	DurableRunInfo = core.DurableRunInfo
	// FsyncMode selects when the write-ahead log is flushed to disk.
	FsyncMode = durable.FsyncMode
	// DurableStats holds the WAL manager's cumulative counters.
	DurableStats = durable.Stats
	// RecoveryStats summarizes one crash recovery.
	RecoveryStats = durable.RecoveryStats
)

// Fsync policies for DurableOptions.Fsync.
const (
	// FsyncCommit flushes once per committed wave (the default).
	FsyncCommit = durable.FsyncCommit
	// FsyncAlways flushes after every appended record.
	FsyncAlways = durable.FsyncAlways
	// FsyncNever leaves flushing to the OS.
	FsyncNever = durable.FsyncNever
)

// ParseFsyncMode parses "commit", "always" or "never".
func ParseFsyncMode(s string) (FsyncMode, error) { return durable.ParseFsyncMode(s) }

// RunPipelineDurable is RunPipeline with crash durability under opts.Dir.
// The directory must not already hold durable state; use ResumePipeline to
// continue a crashed run.
func RunPipelineDurable(build BuildFunc, reportSteps []StepID, cfg PipelineConfig, opts DurableOptions) (*PipelineResult, *DurableRunInfo, error) {
	return core.RunPipelineDurable(build, reportSteps, cfg, opts)
}

// ResumePipeline continues a crashed durable pipeline from the state under
// opts.Dir. cfg must match the original run; the result is bit-identical to
// an uncrashed RunPipelineDurable.
func ResumePipeline(build BuildFunc, reportSteps []StepID, cfg PipelineConfig, opts DurableOptions) (*PipelineResult, *DurableRunInfo, error) {
	return core.ResumePipeline(build, reportSteps, cfg, opts)
}

// Triggering policies.

// SyncPolicy returns the Synchronous Data-Flow policy (every step, every
// wave).
func SyncPolicy() Decider { return engine.Sync{} }

// RandomPolicy returns the uniformly random policy of Figure 11.
func RandomPolicy(p float64, seed int64) Decider { return engine.NewRandom(p, seed) }

// SeqPolicy returns the execute-every-N-waves policy of Figure 11.
func SeqPolicy(n int) Decider { return engine.NewSeq(n) }

// OraclePolicy returns the simulated-optimal policy: when run through a
// Harness, its decisions replay the reference instance's per-wave labels
// (Figure 12's "optimal").
func OraclePolicy() Decider { return &engine.Oracle{} }

// ParseSpec decodes a JSON workflow spec.
func ParseSpec(data []byte) (Spec, error) { return workflow.ParseSpec(data) }

// ParseContainer parses a "table" or "table/columnPrefix" reference.
func ParseContainer(s string) (Container, error) { return workflow.ParseContainer(s) }

// EncodeFloat encodes a float64 cell value.
func EncodeFloat(v float64) []byte { return kvstore.EncodeFloat(v) }

// DecodeFloat decodes a float64 cell value.
func DecodeFloat(b []byte) (float64, error) { return kvstore.DecodeFloat(b) }

// NewBatch creates an empty mutation batch.
func NewBatch() *Batch { return kvstore.NewBatch() }
