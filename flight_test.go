package smartflux_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"smartflux"
	"smartflux/internal/fault"
)

// TestFlightRecorderDump pins the flight-recorder contract end to end: a
// durable run that dies with spans attached — here via the pipeline
// observer only, the case a library caller hits when DurableOptions.Obs is
// left nil — must leave a non-empty <wal-dir>/flight.jsonl behind.
func TestFlightRecorderDump(t *testing.T) {
	dir := t.TempDir()
	rig := &chaosRig{}
	boom := errors.New("injected wal failure")
	var appends int
	_, _, err := smartflux.RunPipelineDurable(chaosBuild(fault.Policy{}, rig), []smartflux.StepID{"alert"},
		smartflux.PipelineConfig{
			TrainWaves: 10,
			ApplyWaves: 5,
			Session:    smartflux.SessionConfig{Seed: 7, Thresholds: []float64{0.15}, PositiveWeight: 12},
			Obs: smartflux.NewRunObserver(smartflux.NewMetricsRegistry()).
				WithSpanSinks(smartflux.NewSpanRing(0)),
		},
		smartflux.DurableOptions{Dir: dir, Hook: func(op string) error {
			if op == "wal_append" {
				appends++
				if appends > 40 {
					return boom
				}
			}
			return nil
		}})
	if !errors.Is(err, boom) {
		t.Fatalf("durable run should fail with the injected error, got %v", err)
	}
	data, rerr := os.ReadFile(filepath.Join(dir, "flight.jsonl"))
	if rerr != nil {
		t.Fatalf("flight.jsonl not dumped: %v", rerr)
	}
	if len(data) == 0 {
		t.Fatal("flight.jsonl is empty")
	}
	t.Logf("flight.jsonl: %d bytes", len(data))
}
