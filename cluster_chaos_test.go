package smartflux_test

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"smartflux"
	"smartflux/internal/fault"
	"smartflux/internal/kvstore/cluster"
	"smartflux/internal/kvstore/kvnet"
)

// The cluster chaos suite drives an N-shard replicated kvstore cluster
// through a seeded shard kill and asserts the cluster determinism contract
// (DESIGN.md §14): the cluster's merged dump — version histories and logical
// timestamps included — is bit-identical to a single-store run of the same
// workload, even with a primary killed mid-run by a count-based trigger, its
// replica promoted, and the dead node rejoined through the catch-up
// protocol. Run via `make chaos-cluster` (the TestClusterChaos prefix is the
// filter; deliberately NOT matched by `make chaos`'s TestChaos pattern).

const (
	clusterChaosShards    = 3
	clusterChaosSensors   = 12
	clusterChaosWaves     = 40 // waves before the dead node rejoins
	clusterChaosPostWaves = 20 // waves after the rejoin
	// clusterChaosKillAfter is the transport-op count at which the seeded
	// injector partitions the victim primary — mid-run, while writes are in
	// flight. Deterministic: the single-threaded workload issues transport
	// ops in a fixed sequence.
	clusterChaosKillAfter = 300
)

// chaosOps is the op surface the workload drives, implemented by both the
// cluster client and a plain store, so reference and cluster runs share one
// literal op sequence.
type chaosOps interface {
	CreateTable(name string, maxVersions int) error
	PutFloat(table, row, column string, v float64) error
	Delete(table, row, column string) error
}

// localOps adapts a single store to chaosOps.
type localOps struct{ s *smartflux.Store }

func (l localOps) CreateTable(name string, maxVersions int) error {
	_, err := l.s.EnsureTable(name, smartflux.TableOptions{MaxVersions: maxVersions})
	return err
}

func (l localOps) PutFloat(table, row, column string, v float64) error {
	t, err := l.s.Table(table)
	if err != nil {
		return err
	}
	return t.PutFloat(row, column, v)
}

func (l localOps) Delete(table, row, column string) error {
	t, err := l.s.Table(table)
	if err != nil {
		return err
	}
	return t.Delete(row, column)
}

// clusterChaosWave issues one wave of the workload: a spread of sensor
// readings (multi-versioned), a rolling delete — including, periodically, of
// a cell that does not exist, which must burn a clock tick in both worlds —
// and a running aggregate.
func clusterChaosWave(ops chaosOps, wave int) error {
	if wave == 0 {
		if err := ops.CreateTable("readings", 2); err != nil {
			return err
		}
		if err := ops.CreateTable("agg", 0); err != nil {
			return err
		}
	}
	for i := 0; i < clusterChaosSensors; i++ {
		v := 20 + float64(wave)/4 + float64(i)/2
		if err := ops.PutFloat("readings", "sensor"+fmt.Sprint(i), "temp", v); err != nil {
			return err
		}
	}
	if err := ops.Delete("readings", "sensor"+fmt.Sprint(wave%(2*clusterChaosSensors)), "temp"); err != nil {
		return err
	}
	return ops.PutFloat("agg", "region", "mean", 20+float64(wave)/4)
}

// clusterDumpVersions renders the cluster's merged version dump in
// dumpStore's exact format.
func clusterDumpVersions(t *testing.T, c *cluster.Client, tables ...string) string {
	t.Helper()
	var b strings.Builder
	for _, name := range tables {
		cells, err := c.ScanVersions(name, smartflux.ScanOptions{})
		if err != nil {
			t.Fatalf("cluster scan %s: %v", name, err)
		}
		for _, cell := range cells {
			fmt.Fprintf(&b, "%s %s/%s @%d = %x\n", name, cell.Row, cell.Column, cell.Version.Timestamp, cell.Version.Value)
		}
	}
	return b.String()
}

// TestClusterChaosFailoverDeterminism is the headline cluster chaos run:
// seeded count-based shard kill mid-run, reactive failover to the replica,
// rejoin of the dead node through Reset + cursor catch-up, and a final
// bit-identical dump comparison against the single-store reference.
func TestClusterChaosFailoverDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}

	// Reference: the whole workload against one plain store.
	control := smartflux.NewStore()
	for w := 0; w < clusterChaosWaves+clusterChaosPostWaves; w++ {
		if err := clusterChaosWave(localOps{control}, w); err != nil {
			t.Fatal(err)
		}
	}

	// Cluster side. The kill policy needs the victim addresses up front, so
	// the primaries' ports are bound before the injector exists and the
	// listeners are fault-wrapped afterwards.
	lns := make([]net.Listener, clusterChaosShards)
	addrs := make([]string, clusterChaosShards)
	for s := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[s] = ln
		addrs[s] = ln.Addr().String()
	}
	inj := fault.New(fault.Policy{
		Seed:           7,
		KillShardAddrs: addrs,
		KillShardAfter: clusterChaosKillAfter,
	})
	victim := int(uint64(7) % uint64(clusterChaosShards)) // the policy's choice, spelled out

	var primaries, followers []*cluster.Node
	defer func() {
		for _, n := range append(followers, primaries...) {
			_ = n.Close()
		}
	}()
	for s := 0; s < clusterChaosShards; s++ {
		n, err := cluster.NewNode(cluster.NodeConfig{Listener: fault.WrapListener(lns[s], inj)})
		if err != nil {
			t.Fatal(err)
		}
		primaries = append(primaries, n)
	}
	m := cluster.NewMap(addrs)
	for s := 0; s < clusterChaosShards; s++ {
		f, err := cluster.NewNode(cluster.NodeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		followers = append(followers, f)
		if err := primaries[s].AttachFollower(f.Addr()); err != nil {
			t.Fatal(err)
		}
		if err := m.SetReplica(s, f.Addr()); err != nil {
			t.Fatal(err)
		}
	}

	// Failover spans and counters flow into the suite observer (and the
	// cluster-spans.jsonl artifact when SMARTFLUX_CHAOS_SPAN_OUT is set).
	reg := smartflux.NewMetricsRegistry()
	observer := chaosObserver(t, reg)
	var failovers []string
	cc, err := cluster.New(cluster.Config{
		Map:          m,
		Client:       kvnet.ClientConfig{Dial: fault.Dialer(inj)},
		Seed:         7,
		ProbeRetries: 1,
		ProbeBackoff: time.Millisecond,
		OnFailover: func(shard int, from, to string) {
			failovers = append(failovers, fmt.Sprintf("%d:%s->%s", shard, from, to))
		},
		Obs: observer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cc.Close() }()

	// Phase 1: waves across the seeded kill. The injector partitions the
	// victim primary at the KillShardAfter-th transport op; the next op
	// routed to it probes, promotes the follower and retries.
	for w := 0; w < clusterChaosWaves; w++ {
		if err := clusterChaosWave(clusterOps{cc}, w); err != nil {
			t.Fatalf("wave %d: %v", w, err)
		}
	}
	st := inj.Stats()
	if st.Partitions != 1 {
		t.Fatalf("seeded kill did not fire exactly once: %+v", st)
	}
	if len(failovers) != 1 || !strings.HasPrefix(failovers[0], fmt.Sprint(victim)) {
		t.Fatalf("failovers = %v, want exactly one on shard %d", failovers, victim)
	}
	if got := cc.Map().Shards[victim].Primary; got != followers[victim].Addr() {
		t.Fatalf("shard %d primary = %s, want promoted follower %s", victim, got, followers[victim].Addr())
	}

	// Phase 2: the dead node heals and rejoins as a follower of the promoted
	// node — Reset (it died holding an un-shipped cursor position and a stale
	// follower link) then cursor catch-up from zero.
	inj.Heal(addrs[victim])
	rejoined := primaries[victim]
	rejoined.Reset()
	if err := followers[victim].AttachFollower(rejoined.Addr()); err != nil {
		t.Fatalf("rejoin catch-up: %v", err)
	}

	// Phase 3: more waves on the new topology; the rejoined follower tracks
	// them live.
	for w := clusterChaosWaves; w < clusterChaosWaves+clusterChaosPostWaves; w++ {
		if err := clusterChaosWave(clusterOps{cc}, w); err != nil {
			t.Fatalf("wave %d: %v", w, err)
		}
	}

	// The contract: merged cluster dump bit-identical to the single store.
	want := dumpStore(t, control, "readings", "agg")
	got := clusterDumpVersions(t, cc, "readings", "agg")
	if got != want {
		t.Errorf("cluster dump diverged from single store after kill/failover/rejoin:\ncluster:\n%s\ncontrol:\n%s", got, want)
	}

	// The rejoined follower converged on the promoted node's exact log.
	pc, pcrc := followers[victim].Log().Status()
	rc, rcrc := rejoined.Log().Status()
	if pc != rc || pcrc != rcrc {
		t.Errorf("rejoined log head (%d,%x) != promoted (%d,%x)", rc, rcrc, pc, pcrc)
	}

	// Observability: the failover span/counter surfaced.
	snap := reg.Snapshot()
	if n := snap.Counters["smartflux_cluster_failovers_total"]; n != 1 {
		t.Errorf("failover counter = %d, want 1", n)
	}
	t.Logf("killed shard %d at op %d, 1 failover, rejoined and converged at cursor %d over %d transport ops",
		victim, clusterChaosKillAfter, rc, inj.Stats().Ops)
}

// clusterOps adapts the cluster client to chaosOps.
type clusterOps struct{ c *cluster.Client }

func (o clusterOps) CreateTable(name string, maxVersions int) error {
	return o.c.CreateTable(name, maxVersions)
}

func (o clusterOps) PutFloat(table, row, column string, v float64) error {
	return o.c.PutFloat(table, row, column, v)
}

func (o clusterOps) Delete(table, row, column string) error {
	return o.c.Delete(table, row, column)
}

// TestClusterChaosScanAfterSeededKill kills a shard (different seed, so a
// different victim than the failover test) partway through a 900-row write
// load, lets the writes ride the failover, then runs a scatter-gather scan
// against the failed-over topology and checks it cell-for-cell against the
// reference — no duplicates, no gaps, same timestamps. (Failover between
// pages of an in-flight scan is covered by the cluster package's
// mid-scan-failover test, which can steer the kill with a page hook.)
func TestClusterChaosScanAfterSeededKill(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	control := smartflux.NewStore()
	lns := make([]net.Listener, clusterChaosShards)
	addrs := make([]string, clusterChaosShards)
	for s := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[s] = ln
		addrs[s] = ln.Addr().String()
	}
	// Each logical op costs several transport ops (client write/read plus the
	// server's), so op 2000 lands deep inside the 900-row write load.
	const rows = 900
	inj := fault.New(fault.Policy{
		Seed:           3,
		KillShardAddrs: addrs,
		KillShardAfter: 2000,
	})
	var primaries, followers []*cluster.Node
	defer func() {
		for _, n := range append(followers, primaries...) {
			_ = n.Close()
		}
	}()
	for s := 0; s < clusterChaosShards; s++ {
		n, err := cluster.NewNode(cluster.NodeConfig{Listener: fault.WrapListener(lns[s], inj)})
		if err != nil {
			t.Fatal(err)
		}
		primaries = append(primaries, n)
	}
	m := cluster.NewMap(addrs)
	for s := 0; s < clusterChaosShards; s++ {
		f, err := cluster.NewNode(cluster.NodeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		followers = append(followers, f)
		if err := primaries[s].AttachFollower(f.Addr()); err != nil {
			t.Fatal(err)
		}
		if err := m.SetReplica(s, f.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	cc, err := cluster.New(cluster.Config{
		Map:          m,
		Client:       kvnet.ClientConfig{Dial: fault.Dialer(inj)},
		Seed:         3,
		ProbeRetries: 1,
		ProbeBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cc.Close() }()

	if err := cc.CreateTable("wide", 1); err != nil {
		t.Fatal(err)
	}
	ct, err := control.EnsureTable("wide", smartflux.TableOptions{MaxVersions: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		row := fmt.Sprintf("row-%04d", i)
		v := float64(i) / 8
		if err := cc.PutFloat("wide", row, "v", v); err != nil {
			t.Fatal(err)
		}
		if err := ct.PutFloat(row, "v", v); err != nil {
			t.Fatal(err)
		}
	}

	if st := inj.Stats(); st.Partitions != 1 {
		t.Fatalf("kill did not fire during the write load: %+v", st)
	}
	cells, err := cc.Scan("wide", smartflux.ScanOptions{})
	if err != nil {
		t.Fatalf("scan after kill: %v", err)
	}
	want := ct.Scan(smartflux.ScanOptions{})
	if len(cells) != len(want) {
		t.Fatalf("scan returned %d cells, want %d (duplicates or gaps)", len(cells), len(want))
	}
	for i := range cells {
		if cells[i].Row != want[i].Row || cells[i].Column != want[i].Column ||
			cells[i].Version.Timestamp != want[i].Version.Timestamp {
			t.Fatalf("cell %d: got (%s,%s,@%d) want (%s,%s,@%d)",
				i, cells[i].Row, cells[i].Column, cells[i].Version.Timestamp,
				want[i].Row, want[i].Column, want[i].Version.Timestamp)
		}
	}
}
