package smartflux_test

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"smartflux"
	"smartflux/internal/durable"
	"smartflux/internal/fault"
	"smartflux/internal/kvstore"
	"smartflux/internal/kvstore/cluster"
	"smartflux/internal/kvstore/kvnet"
)

// The partition chaos suite drives the replicated cluster through network
// partitions — symmetric (a primary cut off in both directions, the classic
// dead shard) and asymmetric (a single replication link cut one way, the
// shape real partitions take) — and asserts the fencing contract (DESIGN.md
// §15): at every point exactly one unfenced primary serves each shard, a
// demoted primary acks zero writes after its fence, no acked write is lost
// across partition and heal, and the healed cluster's merged dump is
// bit-identical to a single-store run of the same workload. Run via
// `make chaos-partition` (the TestPartitionChaos prefix is the filter;
// deliberately matched by neither `make chaos`'s TestChaos pattern nor
// `make chaos-cluster`'s TestClusterChaos).

const (
	partitionChaosShards    = 2
	partitionChaosWaves     = 24 // waves across the seeded cut
	partitionChaosPostWaves = 12 // waves after heal + rejoin
	// partitionChaosSeed picks the victim shard (seed % shards) and seeds
	// the injector, probe jitter and breakers, so two runs of the same
	// scenario replay the same failovers and counters. Every node's
	// replication link dials through the same injector with its own source
	// identity (DialerFrom), so partitioning a node cuts its outgoing ships
	// along with its client traffic.
	partitionChaosSeed = 11
)

// partitionCluster is the suite's rig: fault-wrapped primaries whose
// follower links carry their source identity, plain followers, and the map.
type partitionCluster struct {
	primaries, followers []*cluster.Node
	addrs                []string
	m                    *cluster.Map
}

func startPartitionCluster(t *testing.T, shards int, inj *fault.Injector, o *smartflux.RunObserver) *partitionCluster {
	t.Helper()
	pc := &partitionCluster{addrs: make([]string, shards)}
	// Pre-bind every listener — primaries and followers — so each node's
	// replication link can be dialed with the node's own address as its
	// source identity (DialerFrom). That is what lets a one-way or link
	// partition of a node cut its outgoing ships, not just traffic to it.
	lns := make([]net.Listener, 2*shards)
	addrOf := make([]string, 2*shards)
	for s := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[s] = ln
		addrOf[s] = ln.Addr().String()
	}
	copy(pc.addrs, addrOf[:shards])
	newNode := func(i int, label string) *cluster.Node {
		n, err := cluster.NewNode(cluster.NodeConfig{
			Listener: fault.WrapListener(lns[i], inj),
			Follower: kvnet.ClientConfig{Dial: fault.DialerFrom(inj, addrOf[i])},
			Label:    label,
			Obs:      o,
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	for s := 0; s < shards; s++ {
		pc.primaries = append(pc.primaries, newNode(s, fmt.Sprintf("p%d", s)))
	}
	pc.m = cluster.NewMap(pc.addrs)
	for s := 0; s < shards; s++ {
		f := newNode(shards+s, fmt.Sprintf("f%d", s))
		pc.followers = append(pc.followers, f)
		if err := pc.primaries[s].AttachFollower(f.Addr()); err != nil {
			t.Fatal(err)
		}
		if err := pc.m.SetReplica(s, f.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, n := range append(pc.followers, pc.primaries...) {
			_ = n.Close()
		}
	})
	return pc
}

// assertOneUnfencedPrimaryPerShard checks the core invariant: the node each
// shard's map entry names as primary is unfenced, and every node the map
// has moved past (fenced) is not serving as any shard's primary.
func assertOneUnfencedPrimaryPerShard(t *testing.T, cc *cluster.Client, nodes map[string]*cluster.Node) {
	t.Helper()
	for s, sh := range cc.Map().Shards {
		p, ok := nodes[sh.Primary]
		if !ok {
			t.Fatalf("shard %d primary %s is not a known node", s, sh.Primary)
		}
		if p.Fenced() {
			t.Fatalf("shard %d primary %s is fenced — a fenced node is serving writes", s, sh.Primary)
		}
	}
}

// TestPartitionChaosSymmetricFencedFailover is the headline run: a seeded
// symmetric partition kills a primary mid-workload, the replica is promoted
// under a bumped epoch, the healed zombie is fenced on its first
// stale-timeline write (acking nothing after the fence), the node rejoins
// through Reset + catch-up, and the merged dump is bit-identical to the
// single-store reference. The whole scenario runs twice; the fencing and
// breaker counters must match exactly across runs (seeded determinism).
func TestPartitionChaosSymmetricFencedFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	c1, d1 := runPartitionChaosSymmetric(t)
	c2, d2 := runPartitionChaosSymmetric(t)
	if d1 != d2 {
		t.Errorf("same-seed runs produced different merged dumps")
	}
	for _, key := range []string{
		"smartflux_cluster_failovers_total",
		fmt.Sprintf("smartflux_cluster_fenced_writes_total{node=%q}", "p0"),
		fmt.Sprintf("smartflux_cluster_fenced_writes_total{node=%q}", "p1"),
		fmt.Sprintf("smartflux_cluster_self_demotions_total{node=%q}", "p0"),
		fmt.Sprintf("smartflux_cluster_self_demotions_total{node=%q}", "p1"),
		`smartflux_breaker_opens_total{shard="0"}`,
		`smartflux_breaker_opens_total{shard="1"}`,
		"smartflux_cluster_repl_records_total",
	} {
		if c1[key] != c2[key] {
			t.Errorf("counter %s diverged across same-seed runs: %d vs %d", key, c1[key], c2[key])
		}
	}
	if c1["smartflux_cluster_failovers_total"] != 1 {
		t.Errorf("failovers = %d, want exactly 1", c1["smartflux_cluster_failovers_total"])
	}
	victimLabel := fmt.Sprintf("smartflux_cluster_self_demotions_total{node=%q}",
		fmt.Sprintf("p%d", int(uint64(partitionChaosSeed)%uint64(partitionChaosShards))))
	if c1[victimLabel] != 1 {
		t.Errorf("victim self-demotions = %d, want exactly 1", c1[victimLabel])
	}
}

func runPartitionChaosSymmetric(t *testing.T) (map[string]uint64, string) {
	t.Helper()

	// Reference: the acked workload against one plain store.
	control := smartflux.NewStore()
	for w := 0; w < partitionChaosWaves+partitionChaosPostWaves; w++ {
		if err := clusterChaosWave(localOps{control}, w); err != nil {
			t.Fatal(err)
		}
	}

	reg := smartflux.NewMetricsRegistry()
	observer := chaosObserver(t, reg)
	inj := fault.New(fault.Policy{Seed: partitionChaosSeed})
	pc := startPartitionCluster(t, partitionChaosShards, inj, observer)
	// The victim is the seed's choice, same formula the kill policy uses —
	// spelled out so the cut can be imposed symmetrically at a fixed wave
	// boundary (deterministic across reruns by construction).
	victim := int(uint64(partitionChaosSeed) % uint64(partitionChaosShards))

	var failovers []string
	cc, err := cluster.New(cluster.Config{
		Map:          pc.m,
		Client:       kvnet.ClientConfig{Dial: fault.Dialer(inj)},
		Seed:         partitionChaosSeed,
		ProbeRetries: 1,
		ProbeBackoff: time.Millisecond,
		OnFailover: func(shard int, from, to string) {
			failovers = append(failovers, fmt.Sprintf("%d:%s->%s", shard, from, to))
		},
		Obs: observer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cc.Close() }()
	for s := range pc.primaries {
		pc.primaries[s].SetMap(pc.m)
		pc.followers[s].SetMap(pc.m)
	}

	nodes := make(map[string]*cluster.Node)
	for _, n := range append(append([]*cluster.Node{}, pc.primaries...), pc.followers...) {
		nodes[n.Addr()] = n
	}

	// Phase 1: waves up to the cut, then the symmetric partition of the
	// seeded victim — both directions, so its client traffic and its
	// outgoing ships die together — then waves across the failover.
	half := partitionChaosWaves / 2
	for w := 0; w < half; w++ {
		if err := clusterChaosWave(clusterOps{cc}, w); err != nil {
			t.Fatalf("wave %d: %v", w, err)
		}
	}
	inj.Partition(pc.addrs[victim])
	for w := half; w < partitionChaosWaves; w++ {
		if err := clusterChaosWave(clusterOps{cc}, w); err != nil {
			t.Fatalf("wave %d across partition: %v", w, err)
		}
	}
	if len(failovers) != 1 || !strings.HasPrefix(failovers[0], fmt.Sprint(victim)) {
		t.Fatalf("failovers = %v, want exactly one on shard %d", failovers, victim)
	}
	if got := cc.Map().Shards[victim]; got.Primary != pc.followers[victim].Addr() || got.Epoch != 2 {
		t.Fatalf("post-failover shard %d = %+v, want promoted follower at epoch 2", victim, got)
	}
	assertOneUnfencedPrimaryPerShard(t, cc, nodes)

	// Phase 2: heal. The zombie primary comes back believing it owns the
	// shard at epoch 1. Its first stale-timeline write is applied locally at
	// most, fenced by its follower — the very node promoted over it — and
	// never acked; the node demotes and refuses everything after.
	inj.Heal(pc.addrs[victim])
	zombie := pc.primaries[victim]
	cl, err := kvnet.Dial(pc.addrs[victim])
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	ghost := durable.EncodeMutationRecord(kvstore.Mutation{
		Table: "readings", Row: "ghost", Column: "temp", New: []byte("lost-timeline"),
		Timestamp: 1 << 40, Kind: kvstore.MutationPut,
	})
	if err := cl.ReplEpoch(1, [][]byte{ghost}); !errors.Is(err, kvnet.ErrFenced) {
		t.Fatalf("stale-timeline write to healed zombie = %v, want ErrFenced", err)
	}
	if !zombie.Fenced() {
		t.Fatal("zombie primary not fenced after its stale write was rejected")
	}
	if err := cl.PutFloat("readings", "ghost2", "temp", 1); !errors.Is(err, kvnet.ErrFenced) {
		t.Fatalf("post-fence write = %v, want ErrFenced (zero acked writes after the fence)", err)
	}
	assertOneUnfencedPrimaryPerShard(t, cc, nodes)

	// Phase 3: rejoin through Reset + cursor catch-up, then the tail waves.
	zombie.Reset()
	if err := pc.followers[victim].AttachFollower(zombie.Addr()); err != nil {
		t.Fatalf("rejoin catch-up: %v", err)
	}
	for w := partitionChaosWaves; w < partitionChaosWaves+partitionChaosPostWaves; w++ {
		if err := clusterChaosWave(clusterOps{cc}, w); err != nil {
			t.Fatalf("post-rejoin wave %d: %v", w, err)
		}
	}

	// The contract: zero acked-write loss, no ghost, bit-identical merge.
	want := dumpStore(t, control, "readings", "agg")
	got := clusterDumpVersions(t, cc, "readings", "agg")
	if got != want {
		t.Errorf("merged dump diverged from single store across partition/heal:\ncluster:\n%s\ncontrol:\n%s", got, want)
	}
	if strings.Contains(got, "ghost") {
		t.Error("un-acked ghost write surfaced in the merged dump")
	}
	snap := reg.Snapshot()
	return snap.Counters, got
}

// TestPartitionChaosAsymmetricLinkFence cuts single directed replication
// links while clients keep reaching both nodes — both orientations in turn.
// Cutting primary→replica makes the primary's synchronous ship fail, so it
// self-demotes without acking the in-flight write; the client follows the
// fencing rejection to the replica and the retried write is acked there —
// the client-visible call succeeds, losing nothing. After the old primary
// rejoins as a follower, the reverse link is cut and the roles swap again
// under a third epoch.
func TestPartitionChaosAsymmetricLinkFence(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	control := smartflux.NewStore()
	reg := smartflux.NewMetricsRegistry()
	observer := chaosObserver(t, reg)
	inj := fault.New(fault.Policy{Seed: partitionChaosSeed})
	pc := startPartitionCluster(t, 1, inj, observer)
	p, r := pc.primaries[0], pc.followers[0]

	var failovers []string
	cc, err := cluster.New(cluster.Config{
		Map:          pc.m,
		Client:       kvnet.ClientConfig{Dial: fault.Dialer(inj)},
		Seed:         partitionChaosSeed,
		ProbeRetries: 1,
		ProbeBackoff: time.Millisecond,
		OnFailover: func(shard int, from, to string) {
			failovers = append(failovers, fmt.Sprintf("%d:%s->%s", shard, from, to))
		},
		Obs: observer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cc.Close() }()
	p.SetMap(pc.m)
	r.SetMap(pc.m)

	put := func(row string, v float64) {
		t.Helper()
		if err := cc.PutFloat("t", row, "v", v); err != nil {
			t.Fatalf("Put %s: %v", row, err)
		}
		ct, err := control.Table("t")
		if err != nil {
			t.Fatal(err)
		}
		if err := ct.PutFloat(row, "v", v); err != nil {
			t.Fatal(err)
		}
	}
	if err := cc.CreateTable("t", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := control.EnsureTable("t", smartflux.TableOptions{MaxVersions: 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		put(fmt.Sprintf("r%02d", i), float64(i)/4)
	}

	// Orientation 1: cut primary→replica. Clients still reach p, but its
	// next ship dies, it fences, and the in-flight write is re-acked on r.
	inj.PartitionLink(pc.addrs[0], r.Addr())
	put("across-cut", 42.5)
	if len(failovers) != 1 {
		t.Fatalf("failovers = %v, want exactly one fenced failover", failovers)
	}
	if !p.Fenced() {
		t.Fatal("primary did not self-demote when its replication link died")
	}
	if got := cc.Map().Shards[0]; got.Primary != r.Addr() || got.Epoch != 2 {
		t.Fatalf("shard after link cut = %+v, want replica primary at epoch 2", got)
	}
	rt, err := r.Store().Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if v, found := rt.Get("across-cut", "v"); !found {
		t.Fatalf("acked write missing from promoted replica: %q", v)
	}
	for i := 20; i < 30; i++ {
		put(fmt.Sprintf("r%02d", i), float64(i)/4)
	}

	// Healing the link does not unfence: the demoted node acks nothing —
	// not client writes, not catch-up replication — until it is Reset. (Its
	// log is not diverged: it appended the in-flight record before the ship
	// died, and the client re-shipped the identical bytes to the replica;
	// the node is merely behind, and fenced.)
	inj.HealLink(pc.addrs[0], r.Addr())
	cl, err := kvnet.Dial(pc.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	if err := cl.PutFloat("t", "zombie", "v", 1); !errors.Is(err, kvnet.ErrFenced) {
		t.Fatalf("write to healed-but-demoted node = %v, want ErrFenced", err)
	}
	if err := r.AttachFollower(p.Addr()); !errors.Is(err, kvnet.ErrFenced) {
		t.Fatalf("attach of fenced node without Reset = %v, want ErrFenced", err)
	}
	p.Reset()
	if err := r.AttachFollower(p.Addr()); err != nil {
		t.Fatalf("rejoin after reset: %v", err)
	}

	// Orientation 2: cut the reverse link (new primary → its follower).
	// Now r fences mid-write and the client promotes p back — epoch 3 —
	// with the retried write acked there.
	inj.PartitionLink(r.Addr(), p.Addr())
	put("across-reverse-cut", 43.5)
	if len(failovers) != 2 {
		t.Fatalf("failovers = %v, want a second fenced failover", failovers)
	}
	if !r.Fenced() {
		t.Fatal("second primary did not self-demote on the reverse link cut")
	}
	if got := cc.Map().Shards[0]; got.Primary != p.Addr() || got.Epoch != 3 {
		t.Fatalf("shard after reverse cut = %+v, want original node back at epoch 3", got)
	}
	for i := 30; i < 40; i++ {
		put(fmt.Sprintf("r%02d", i), float64(i)/4)
	}

	// Exactly one unfenced primary; zero acked-write loss; bit-identical.
	if p.Fenced() {
		t.Fatal("serving primary is fenced")
	}
	want := dumpStore(t, control, "t")
	got := clusterDumpVersions(t, cc, "t")
	if got != want {
		t.Errorf("merged dump diverged across asymmetric cuts:\ncluster:\n%s\ncontrol:\n%s", got, want)
	}
	if strings.Contains(got, "zombie") {
		t.Error("un-acked zombie write surfaced in the merged dump")
	}
	if st := inj.Stats(); st.LinkPartitions != 2 {
		t.Errorf("link partitions = %d, want 2 (one per orientation)", st.LinkPartitions)
	}
	snap := reg.Snapshot()
	for _, label := range []string{"p0", "f0"} {
		key := fmt.Sprintf("smartflux_cluster_self_demotions_total{node=%q}", label)
		if snap.Counters[key] != 1 {
			t.Errorf("%s = %d, want 1 (each node demoted exactly once)", key, snap.Counters[key])
		}
	}
}
