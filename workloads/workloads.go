// Package workloads exposes the paper's evaluation workloads (§5.1) and the
// motivational fire-risk scenario as ready-to-run workflow builders. Each
// builder returns a smartflux.BuildFunc producing fresh, identical instances
// of the workload — generators are deterministic per seed, so a harness can
// run live and reference copies in lockstep.
package workloads

import (
	"smartflux/internal/aqhi"
	"smartflux/internal/firerisk"
	"smartflux/internal/lrb"

	"smartflux"
)

// Configuration types of the three workloads.
type (
	// LinearRoadConfig parameterizes the Linear Road tolling benchmark.
	LinearRoadConfig = lrb.Config
	// AirQualityConfig parameterizes the AQHI sensor-network workload.
	AirQualityConfig = aqhi.Config
	// FireRiskConfig parameterizes the fire-risk assessment workload.
	FireRiskConfig = firerisk.Config
)

// Step identifiers of the Linear Road workflow (paper Figure 5).
const (
	LinearRoadFeeder     = lrb.StepFeeder
	LinearRoadPositions  = lrb.StepPositions
	LinearRoadQueries    = lrb.StepQueries
	LinearRoadAvgSpeed   = lrb.StepAvgSpeed
	LinearRoadCarCount   = lrb.StepCarCount
	LinearRoadAccidents  = lrb.StepAccidents
	LinearRoadCongestion = lrb.StepCongestion
	LinearRoadClassify   = lrb.StepClassify
	LinearRoadTravelTime = lrb.StepTravelTime
)

// Step identifiers of the air-quality workflow (paper Figure 6).
const (
	AirQualityIngest        = aqhi.StepIngest
	AirQualityConcentration = aqhi.StepConcentration
	AirQualityZones         = aqhi.StepZones
	AirQualityInterp        = aqhi.StepInterp
	AirQualityHotspots      = aqhi.StepHotspots
	AirQualityIndex         = aqhi.StepIndex
)

// Step identifiers of the fire-risk workflow (paper Figure 2).
const (
	FireRiskMapUpdate = firerisk.StepMapUpdate
	FireRiskAreas     = firerisk.StepAreas
	FireRiskThermal   = firerisk.StepThermal
	FireRiskAreaRisk  = firerisk.StepAreaRisk
	FireRiskOverall   = firerisk.StepOverall
	FireRiskSatellite = firerisk.StepSatellite
	FireRiskDispatch  = firerisk.StepDispatch
)

// LinearRoad returns a builder for the Linear Road tolling workload.
func LinearRoad(cfg LinearRoadConfig) smartflux.BuildFunc {
	return lrb.Build(cfg)
}

// AirQuality returns a builder for the AQHI workload.
func AirQuality(cfg AirQualityConfig) smartflux.BuildFunc {
	return aqhi.Build(cfg)
}

// FireRisk returns a builder for the fire-risk workload.
func FireRisk(cfg FireRiskConfig) smartflux.BuildFunc {
	return firerisk.Build(cfg)
}

// AirQualityRiskClass maps an AQHI index value to its health-risk class
// (low, moderate, high, very high).
func AirQualityRiskClass(index float64) string {
	return aqhi.RiskClass(index)
}
