package main

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"smartflux"
	"smartflux/workloads"
)

// outOfOrderLog is a hand-built mixed JSONL stream exercising everything a
// real log can throw at the parser: children before parents, the wave span
// last, a torn line, an unknown record type, a duplicate span ID (a wave
// retry re-emitting the same deterministic ID) and an interleaved decision.
const outOfOrderLog = `{"type":"span","id":"run/w0/b/a0","parent":"run/w0/b","name":"attempt","layer":"engine","wave":0,"attempt":0,"dur_ns":2500000}
{"type":"span","id":"run/w0/b","parent":"run/w0","name":"step","layer":"engine","wave":0,"step":"b","attempt":-1,"dur_ns":5000000,"wait_ns":2000000,"wait_for":["run/w0/a"]}
{"type":"span","id":"run/w0/c","parent":"run/w0","name":"step","layer":"engine","wave":0,"step":"c","attempt":-1,"dur_ns":1000000,"skipped":true,"wait_for":["run/w0/a"]}
this line is torn mid-{record
{"type":"widget","id":"future-record-kind"}
{"type":"span","id":"run/w0/a","parent":"run/w0","name":"step","layer":"engine","wave":0,"step":"a","attempt":-1,"dur_ns":3000000}
{"type":"decision","wave":0,"step":"b","executed":true,"sim_eps":0.25,"iota":0.4}
{"type":"span","id":"run/w0","parent":"run","name":"wave","layer":"engine","wave":0,"attempt":-1,"dur_ns":9000000}
{"type":"span","id":"run/w0","parent":"run","name":"wave","layer":"engine","wave":0,"attempt":-1,"dur_ns":8000000}
`

func TestReassembleOutOfOrder(t *testing.T) {
	tr := newTrace()
	if err := tr.readFrom(strings.NewReader(outOfOrderLog)); err != nil {
		t.Fatal(err)
	}
	if tr.malformed != 1 {
		t.Errorf("malformed = %d, want 1", tr.malformed)
	}
	if tr.unknown != 1 {
		t.Errorf("unknown = %d, want 1", tr.unknown)
	}
	if len(tr.spans) != 5 {
		t.Fatalf("spans = %d, want 5", len(tr.spans))
	}
	// The duplicate wave record must win, once, with its later payload.
	if got := tr.spans["run/w0"].DurNanos; got != 8000000 {
		t.Errorf("duplicate ID: dur = %d, want last-wins 8000000", got)
	}
	seen := 0
	for _, id := range tr.order {
		if id == "run/w0" {
			seen++
		}
	}
	if seen != 1 {
		t.Errorf("run/w0 appears %d times in order, want 1", seen)
	}

	byWave := tr.waveSteps()
	steps := byWave[0]
	if len(steps) != 3 {
		t.Fatalf("wave 0 steps = %d, want 3", len(steps))
	}
	wsp, ok := tr.waveSpan(0)
	if !ok {
		t.Fatal("wave span missing")
	}
	cp := criticalPath(0, steps, wsp.DurNanos)
	// b's execute time is 5ms-2ms wait = 3ms on top of a's 3ms: the chain
	// a -> b (6ms) beats both a alone and the skipped c.
	if cp.cpDur != 6000000 {
		t.Errorf("critical path = %dns, want 6000000", cp.cpDur)
	}
	if want := []string{"a", "b"}; strings.Join(cp.path, ",") != strings.Join(want, ",") {
		t.Errorf("path = %v, want %v", cp.path, want)
	}
	if cp.executed != 2 || cp.skipped != 1 {
		t.Errorf("exec/skip = %d/%d, want 2/1", cp.executed, cp.skipped)
	}

	rows := tr.epsTimeline()
	if len(rows) != 1 || rows[0].executed != 1 || rows[0].epsSum != 0.25 {
		t.Errorf("eps timeline = %+v, want one wave with 1 executed, Σε 0.25", rows)
	}

	var out bytes.Buffer
	writeReport(&out, tr, 5, 0)
	report := out.String()
	for _, want := range []string{"Per-wave critical path", "a -> b", "Per-layer latency", "ε-spend timeline", "skipped 1 malformed and 1 unknown-type lines"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

// tracePipeline runs the seeded quickstart-sized pipeline with span tracing
// into a buffer and returns the parsed trace.
func tracePipeline(t *testing.T) *trace {
	t.Helper()
	var buf bytes.Buffer
	sink := smartflux.NewJSONLTraceSink(&buf)
	observer := smartflux.NewRunObserver(smartflux.NewMetricsRegistry(), sink).WithSpanSinks(sink)
	build := workloads.AirQuality(workloads.AirQualityConfig{Seed: 42})
	res, err := smartflux.RunPipeline(build, nil, smartflux.PipelineConfig{
		TrainWaves: 40,
		ApplyWaves: 20,
		Session:    smartflux.SessionConfig{Seed: 1},
		Obs:        observer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Apply == nil {
		t.Fatal("no apply phase")
	}
	tr := newTrace()
	if err := tr.readFrom(&buf); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestSeededPipelineReport is the golden-ish acceptance check: a seeded run
// produces a trace whose analysis contains every report section, a full
// critical path per wave, and the deterministic ID tree (same engine/ml span
// IDs on a re-run, even though timings differ).
func TestSeededPipelineReport(t *testing.T) {
	tr := tracePipeline(t)
	if tr.malformed != 0 || tr.unknown != 0 {
		t.Fatalf("clean run parsed with %d malformed / %d unknown lines", tr.malformed, tr.unknown)
	}
	if len(tr.decisions) == 0 {
		t.Fatal("no decision records in mixed stream")
	}

	byWave := tr.waveSteps()
	// The harness instruments only the live instance; each of the 60 waves
	// must have a wave span with step children.
	if len(byWave) != 60 {
		t.Fatalf("waves with steps = %d, want 60", len(byWave))
	}
	for wv, steps := range byWave {
		if len(steps) == 0 {
			t.Fatalf("wave %d has no step spans", wv)
		}
		wsp, ok := tr.waveSpan(wv)
		if !ok {
			t.Fatalf("wave %d span missing", wv)
		}
		cp := criticalPath(wv, steps, wsp.DurNanos)
		if len(cp.path) == 0 {
			t.Fatalf("wave %d: empty critical path", wv)
		}
		// The critical chain executes sequentially inside the wave, so it
		// can never exceed the observed wave duration (1ms slop for clock
		// granularity).
		if cp.cpDur > cp.waveDur+int64(1e6) {
			t.Fatalf("wave %d: critical path %dns exceeds wave duration %dns", wv, cp.cpDur, cp.waveDur)
		}
	}

	if _, ok := tr.spans["train/t0"]; !ok {
		t.Error("no train/t0 span from Session.Train")
	}
	layers := map[string]bool{}
	for _, id := range tr.order {
		layers[tr.spans[id].Layer] = true
	}
	for _, want := range []string{"engine", "store", "ml"} {
		if !layers[want] {
			t.Errorf("layer %q missing from trace (have %v)", want, layers)
		}
	}

	var out bytes.Buffer
	writeReport(&out, tr, 5, 0)
	report := out.String()
	for _, want := range []string{"Per-wave critical path", "Per-layer latency", "ε-spend timeline", "engine"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}

	// Determinism: a second identical run yields the identical engine+ml
	// span ID tree — IDs derive from (run, wave, step, attempt), not from
	// allocation order or timing.
	ids := func(tr *trace) []string {
		var out []string
		for id, ev := range tr.spans {
			if ev.Layer == "engine" || ev.Layer == "ml" {
				out = append(out, id)
			}
		}
		sort.Strings(out)
		return out
	}
	tr2 := tracePipeline(t)
	a, b := ids(tr), ids(tr2)
	if len(a) != len(b) {
		t.Fatalf("span tree size changed across seeded runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("span ID %d differs across seeded runs: %s vs %s", i, a[i], b[i])
		}
	}
}
