package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"smartflux"
)

// trace accumulates the records of one or more JSONL streams. Span records
// are keyed by their deterministic ID with last-record-wins semantics, so a
// retried wave (which re-emits the same IDs) replaces its failed first try
// instead of double-counting it.
type trace struct {
	spans     map[string]smartflux.SpanEvent
	order     []string // first-seen span ID order, for stable iteration
	decisions []smartflux.DecisionEvent
	malformed int // lines that were not valid JSON records
	unknown   int // valid records of a type this binary doesn't know
}

func newTrace() *trace {
	return &trace{spans: make(map[string]smartflux.SpanEvent)}
}

// readFrom parses one JSONL stream into the trace. Malformed lines (e.g. a
// torn tail from a crashed writer) are counted, not fatal; only I/O errors
// are returned.
func (tr *trace) readFrom(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(strings.TrimSpace(string(line))) == 0 {
			continue
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			tr.malformed++
			continue
		}
		switch probe.Type {
		case "span":
			var ev smartflux.SpanEvent
			if err := json.Unmarshal(line, &ev); err != nil || ev.ID == "" {
				tr.malformed++
				continue
			}
			if _, seen := tr.spans[ev.ID]; !seen {
				tr.order = append(tr.order, ev.ID)
			}
			tr.spans[ev.ID] = ev
		case "decision":
			var ev smartflux.DecisionEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				tr.malformed++
				continue
			}
			tr.decisions = append(tr.decisions, ev)
		default:
			tr.unknown++
		}
	}
	return sc.Err()
}

// waveSteps groups the step spans of each wave, reassembling the causal tree
// from the flat record stream: a step belongs to the wave span its Parent
// names, falling back to its Wave field when the wave span itself is missing
// (truncated log). Map iteration never leaks into output order; callers sort.
func (tr *trace) waveSteps() map[int][]smartflux.SpanEvent {
	byWave := make(map[int][]smartflux.SpanEvent)
	for _, id := range tr.order {
		ev := tr.spans[id]
		if ev.Name != "step" || ev.Wave < 0 {
			continue
		}
		byWave[ev.Wave] = append(byWave[ev.Wave], ev)
	}
	return byWave
}

// waveSpan returns the wave span for a wave index, if present.
func (tr *trace) waveSpan(wave int) (smartflux.SpanEvent, bool) {
	ev, ok := tr.spans[fmt.Sprintf("run/w%d", wave)]
	return ev, ok
}

// execNanos is the execute portion of a span: duration minus the prefix
// spent blocked on predecessors.
func execNanos(ev smartflux.SpanEvent) int64 {
	d := ev.DurNanos - ev.WaitNanos
	if d < 0 {
		d = 0
	}
	return d
}

// critPath holds one wave's critical-path result.
type critPath struct {
	wave     int
	waveDur  int64 // observed wave span duration; 0 when the wave span is missing
	cpDur    int64 // sum of execute times along the critical chain
	path     []string
	executed int
	skipped  int
	degraded int
}

// criticalPath computes, for one wave's steps, the dependency chain with the
// largest total execute time. Edges come from each span's WaitFor list — the
// sibling step spans its start waited on. cp(s) = exec(s) + max cp(pred);
// missing predecessors (truncated logs) and cycles (corrupt input) contribute
// zero rather than failing the analysis.
func criticalPath(wave int, steps []smartflux.SpanEvent, waveDur int64) critPath {
	byID := make(map[string]smartflux.SpanEvent, len(steps))
	for _, s := range steps {
		byID[s.ID] = s
	}
	memo := make(map[string]int64, len(steps))
	best := make(map[string]string, len(steps)) // span ID -> predecessor on its critical chain
	visiting := make(map[string]bool)
	var cp func(id string) int64
	cp = func(id string) int64 {
		if v, ok := memo[id]; ok {
			return v
		}
		if visiting[id] {
			return 0 // cycle: corrupt input, don't recurse forever
		}
		visiting[id] = true
		s := byID[id]
		var maxPred int64
		for _, pred := range s.WaitFor {
			if _, ok := byID[pred]; !ok {
				continue
			}
			if v := cp(pred); v > maxPred || (v == maxPred && best[id] == "") {
				maxPred = v
				best[id] = pred
			}
		}
		delete(visiting, id)
		v := execNanos(s) + maxPred
		memo[id] = v
		return v
	}

	out := critPath{wave: wave, waveDur: waveDur}
	var tail string
	for _, s := range steps {
		switch {
		case s.Degraded:
			out.degraded++
		case s.Skipped:
			out.skipped++
		default:
			out.executed++
		}
		if v := cp(s.ID); v > out.cpDur || tail == "" {
			out.cpDur = v
			tail = s.ID
		}
	}
	for id := tail; id != ""; id = best[id] {
		out.path = append(out.path, byID[id].Step)
	}
	// The chain was walked tail-to-head; present it in execution order.
	for i, j := 0, len(out.path)-1; i < j; i, j = i+1, j-1 {
		out.path[i], out.path[j] = out.path[j], out.path[i]
	}
	return out
}

// layerStat aggregates one (layer, op) latency population.
type layerStat struct {
	layer string
	name  string
	durs  []int64
	total int64
	bytes int64
	errs  int
}

// layerStats groups every non-structural span by (layer, name). Wave and
// run-level spans are containers, not operations: including them would
// double-count their children's time.
func (tr *trace) layerStats() []*layerStat {
	byKey := make(map[string]*layerStat)
	for _, id := range tr.order {
		ev := tr.spans[id]
		if ev.Name == "wave" || ev.Name == "run" || ev.Name == "client" {
			continue
		}
		key := ev.Layer + "/" + ev.Name
		st, ok := byKey[key]
		if !ok {
			st = &layerStat{layer: ev.Layer, name: ev.Name}
			byKey[key] = st
		}
		st.durs = append(st.durs, ev.DurNanos)
		st.total += ev.DurNanos
		st.bytes += ev.Bytes
		if ev.Err != "" {
			st.errs++
		}
	}
	out := make([]*layerStat, 0, len(byKey))
	for _, st := range byKey {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].layer != out[j].layer {
			return out[i].layer < out[j].layer
		}
		return out[i].total > out[j].total
	})
	return out
}

// percentile returns the q-quantile (0 < q <= 1) of a sorted population.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// hotSpot aggregates retries/degradations per operation site.
type hotSpot struct {
	site     string // step ID for engine spans, layer/op otherwise
	retries  int
	spans    int
	degraded int
	lastErr  string
}

// hotSpots aggregates every span that retried, degraded or failed, keyed by
// the step it served (engine spans) or the operation kind (store/net/wal).
func (tr *trace) hotSpots() []*hotSpot {
	byKey := make(map[string]*hotSpot)
	for _, id := range tr.order {
		ev := tr.spans[id]
		if ev.Retries == 0 && !ev.Degraded && ev.Err == "" {
			continue
		}
		if ev.Name == "attempt" {
			continue // counted via their parent's Retries
		}
		key := ev.Layer + "/" + ev.Name
		if ev.Step != "" {
			key = "step " + ev.Step
		}
		hs, ok := byKey[key]
		if !ok {
			hs = &hotSpot{site: key}
			byKey[key] = hs
		}
		hs.spans++
		hs.retries += ev.Retries
		if ev.Degraded {
			hs.degraded++
		}
		if ev.Err != "" {
			hs.lastErr = ev.Err
		}
	}
	out := make([]*hotSpot, 0, len(byKey))
	for _, hs := range byKey {
		out = append(out, hs)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i].retries+out[i].degraded, out[j].retries+out[j].degraded
		if ri != rj {
			return ri > rj
		}
		return out[i].site < out[j].site
	})
	return out
}

// epsWave is one row of the ε-spend timeline.
type epsWave struct {
	wave       int
	executed   int
	skipped    int
	degraded   int
	violations int
	epsSum     float64 // Σ sim-ε charged by executed steps this wave
	iotaSum    float64
	decided    int // gated decisions this wave (0 = row built from spans only)
}

// epsTimeline builds the per-wave ε-spend rows, preferring decision records
// (which carry the decider's view: verdicts, violations, the full ι vector)
// and falling back to step spans when a log has spans only.
func (tr *trace) epsTimeline() []epsWave {
	byWave := make(map[int]*epsWave)
	row := func(w int) *epsWave {
		r, ok := byWave[w]
		if !ok {
			r = &epsWave{wave: w}
			byWave[w] = r
		}
		return r
	}
	for _, d := range tr.decisions {
		r := row(d.Wave)
		r.decided++
		switch {
		case d.Degraded:
			r.degraded++
		case d.Executed:
			r.executed++
			r.epsSum += d.SimEps
		default:
			r.skipped++
		}
		if d.Violation {
			r.violations++
		}
		r.iotaSum += d.Impact
	}
	if len(tr.decisions) == 0 {
		for _, id := range tr.order {
			ev := tr.spans[id]
			if ev.Name != "step" || ev.Wave < 0 {
				continue
			}
			r := row(ev.Wave)
			switch {
			case ev.Degraded:
				r.degraded++
			case ev.Skipped:
				r.skipped++
			default:
				r.executed++
				r.epsSum += ev.Eps
			}
			r.iotaSum += ev.Iota
		}
	}
	out := make([]epsWave, 0, len(byWave))
	for _, r := range byWave {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].wave < out[j].wave })
	return out
}

// ms renders nanoseconds as milliseconds with microsecond precision.
func ms(ns int64) string { return fmt.Sprintf("%.3f", float64(ns)/1e6) }

// bar renders v scaled against max as a fixed-width ASCII bar.
func bar(v, max float64, width int) string {
	if max <= 0 || v <= 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n > width {
		n = width
	}
	if n == 0 {
		n = 1
	}
	return strings.Repeat("#", n)
}

// writeReport renders the full analysis. top bounds the hot-spot list; waves
// bounds the per-wave tables (0 = unlimited).
func writeReport(w io.Writer, tr *trace, top, waves int) {
	byWave := tr.waveSteps()
	waveIdx := make([]int, 0, len(byWave))
	for wv := range byWave {
		waveIdx = append(waveIdx, wv)
	}
	sort.Ints(waveIdx)

	layers := make(map[string]bool)
	for _, id := range tr.order {
		layers[tr.spans[id].Layer] = true
	}
	fmt.Fprintf(w, "== Trace summary ==\n")
	fmt.Fprintf(w, "spans: %d across %d waves and %d layers; decisions: %d",
		len(tr.spans), len(byWave), len(layers), len(tr.decisions))
	if tr.malformed > 0 || tr.unknown > 0 {
		fmt.Fprintf(w, "; skipped %d malformed and %d unknown-type lines", tr.malformed, tr.unknown)
	}
	fmt.Fprintln(w)

	limit := func(idx []int) []int {
		if waves > 0 && len(idx) > waves {
			return idx[:waves]
		}
		return idx
	}

	if len(waveIdx) > 0 {
		fmt.Fprintf(w, "\n== Per-wave critical path ==\n")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "wave\tdur(ms)\tcritical(ms)\tslack(ms)\texec\tskip\tdegr\tpath")
		for _, wv := range limit(waveIdx) {
			var waveDur int64
			if wsp, ok := tr.waveSpan(wv); ok {
				waveDur = wsp.DurNanos
			}
			cp := criticalPath(wv, byWave[wv], waveDur)
			slack := cp.waveDur - cp.cpDur
			if slack < 0 {
				slack = 0
			}
			fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%d\t%d\t%d\t%s\n",
				wv, ms(cp.waveDur), ms(cp.cpDur), ms(slack),
				cp.executed, cp.skipped, cp.degraded, strings.Join(cp.path, " -> "))
		}
		_ = tw.Flush()
	}

	if stats := tr.layerStats(); len(stats) > 0 {
		fmt.Fprintf(w, "\n== Per-layer latency ==\n")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "layer\top\tcount\terrs\ttotal(ms)\tp50(ms)\tp95(ms)\tp99(ms)\tbytes")
		for _, st := range stats {
			sort.Slice(st.durs, func(i, j int) bool { return st.durs[i] < st.durs[j] })
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%s\t%s\t%s\t%s\t%d\n",
				st.layer, st.name, len(st.durs), st.errs, ms(st.total),
				ms(percentile(st.durs, 0.50)), ms(percentile(st.durs, 0.95)),
				ms(percentile(st.durs, 0.99)), st.bytes)
		}
		_ = tw.Flush()
	}

	if hs := tr.hotSpots(); len(hs) > 0 {
		fmt.Fprintf(w, "\n== Retry / degradation hot spots ==\n")
		if top > 0 && len(hs) > top {
			hs = hs[:top]
		}
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "site\tspans\tretries\tdegraded\tlast error")
		for _, h := range hs {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\n", h.site, h.spans, h.retries, h.degraded, h.lastErr)
		}
		_ = tw.Flush()
	}

	if rows := tr.epsTimeline(); len(rows) > 0 {
		fmt.Fprintf(w, "\n== ε-spend timeline ==\n")
		var maxEps float64
		for _, r := range rows {
			if r.epsSum > maxEps {
				maxEps = r.epsSum
			}
		}
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "wave\texec\tskip\tdegr\tviol\tΣε\t")
		shown := rows
		if waves > 0 && len(shown) > waves {
			shown = shown[:waves]
		}
		for _, r := range shown {
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%.4f\t%s\n",
				r.wave, r.executed, r.skipped, r.degraded, r.violations, r.epsSum,
				bar(r.epsSum, maxEps, 20))
		}
		_ = tw.Flush()
	}
}
