// Command sftrace analyzes SmartFlux span logs offline. It reads one or more
// mixed JSONL trace files (span records plus decision records, as written by
// smartflux -span-out or the durable layer's flight recorder) and reports:
//
//   - per-wave critical-path analysis: the dependency chain of step execute
//     times that bounds each wave's latency, and the slack between that chain
//     and the observed wave duration;
//   - a per-layer latency breakdown (engine / store / net / wal / ml) with
//     p50/p95/p99 over each operation kind;
//   - retry and degradation hot spots, and the errors that caused them;
//   - a per-wave ε-spend timeline correlating executed/skipped decisions with
//     the simulated output error the skips charged.
//
// Lines are tolerated out of order, truncated (the tail of a crashed run) and
// duplicated (wave retries re-emit the same deterministic span IDs; the last
// record wins). Unknown record types are counted and skipped so the format
// can grow.
//
// Usage:
//
//	sftrace [-top n] [-waves n] [trace.jsonl ...]
//
// With no file arguments sftrace reads stdin.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	top := flag.Int("top", 5, "how many retry/degradation hot spots to list")
	waves := flag.Int("waves", 0, "limit per-wave tables to the first n waves (0 = all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sftrace [flags] [trace.jsonl ...]\n\nreads mixed span+decision JSONL (stdin when no files are given)\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	tr := newTrace()
	if flag.NArg() == 0 {
		if err := tr.readFrom(os.Stdin); err != nil {
			fmt.Fprintf(os.Stderr, "sftrace: stdin: %v\n", err)
			os.Exit(1)
		}
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sftrace: %v\n", err)
			os.Exit(1)
		}
		rerr := tr.readFrom(f)
		_ = f.Close()
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "sftrace: %s: %v\n", path, rerr)
			os.Exit(1)
		}
	}
	if len(tr.spans) == 0 && len(tr.decisions) == 0 {
		fmt.Fprintln(os.Stderr, "sftrace: no span or decision records found")
		os.Exit(1)
	}
	writeReport(os.Stdout, tr, *top, *waves)
}
