// Command parbench measures the serial-vs-parallel speedup of the two
// hottest paths the worker pools cover — one engine wave over a CPU-heavy
// fan-out workflow, and fitting the paper's 100-tree Random Forest — and
// writes the results as JSON (default BENCH_PR2.json):
//
//	parbench                  # write BENCH_PR2.json in the working dir
//	parbench -out - -iters 5  # print JSON to stdout, 5 iterations each
//
// Speedups are honest for the machine at hand: with GOMAXPROCS < 2 the
// parallel variants still run their concurrent code paths (4 workers) but
// cannot be faster than serial; the recorded gomaxprocs field says which
// regime produced the numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"testing"

	"smartflux"
	"smartflux/internal/engine"
	"smartflux/internal/ml"
)

// report is the BENCH_PR2.json schema.
type report struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	GoVersion  string  `json:"go_version"`
	Note       string  `json:"note"`
	Benchmarks []entry `json:"benchmarks"`
}

// entry compares one workload's serial and parallel timings.
type entry struct {
	Name         string  `json:"name"`
	SerialNsOp   int64   `json:"serial_ns_op"`
	ParallelNsOp int64   `json:"parallel_ns_op"`
	Speedup      float64 `json:"speedup"`
	Workers      int     `json:"workers"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "parbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("parbench", flag.ContinueOnError)
	out := fs.String("out", "BENCH_PR2.json", "output file (- = stdout)")
	iters := fs.Int("iters", 10, "benchmark iterations per measurement")
	workers := fs.Int("workers", 4, "worker-pool size of the parallel variants")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// testing.Benchmark obeys the test.benchtime flag; register the testing
	// flags and pin an exact iteration count so serial and parallel variants
	// do identical work.
	testing.Init()
	if err := flag.Set("test.benchtime", fmt.Sprintf("%dx", *iters)); err != nil {
		return err
	}

	rep := report{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Note: "serial and parallel variants produce bit-identical results; " +
			"speedup > 1 requires GOMAXPROCS > 1 (>= 1.5x expected at GOMAXPROCS >= 4)",
	}

	waveEntry, err := benchWave(*workers)
	if err != nil {
		return err
	}
	rep.Benchmarks = append(rep.Benchmarks, waveEntry)
	rep.Benchmarks = append(rep.Benchmarks, benchForest(*workers))

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

// measure runs fn under testing.Benchmark (iteration count fixed by the
// test.benchtime flag set in run) and returns ns/op.
func measure(fn func(b *testing.B)) int64 {
	return testing.Benchmark(fn).NsPerOp()
}

// speedup guards against division by zero on degenerate timings.
func speedup(serial, parallel int64) float64 {
	if parallel <= 0 {
		return 0
	}
	return float64(serial) / float64(parallel)
}

// benchWave measures one engine wave over an 8-way CPU-heavy fan-out.
func benchWave(workers int) (entry, error) {
	const width, work = 8, 200_000
	runOnce := func(par int) (int64, error) {
		wf, store, err := fanoutWorkload(width, work)()
		if err != nil {
			return 0, err
		}
		inst, err := engine.NewInstance(wf, store, engine.InstanceConfig{Parallelism: par})
		if err != nil {
			return 0, err
		}
		var benchErr error
		ns := measure(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := inst.RunWave(engine.Sync{}); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		})
		return ns, benchErr
	}
	serial, err := runOnce(1)
	if err != nil {
		return entry{}, err
	}
	parallel, err := runOnce(workers)
	if err != nil {
		return entry{}, err
	}
	return entry{
		Name:         fmt.Sprintf("RunWave/fanout-%d", width),
		SerialNsOp:   serial,
		ParallelNsOp: parallel,
		Speedup:      speedup(serial, parallel),
		Workers:      workers,
	}, nil
}

// benchForest measures fitting the paper's 100-tree forest.
func benchForest(workers int) entry {
	rng := rand.New(rand.NewSource(11))
	n := 400
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		a, c := rng.Float64(), rng.Float64()
		x[i] = []float64{a, c}
		if (a > 0.5) != (c > 0.5) {
			y[i] = 1
		}
	}
	d := ml.Dataset{X: x, Y: y}
	runOnce := func(par int) int64 {
		return measure(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f := ml.NewForest(ml.ForestConfig{Trees: 100, Seed: 7, Parallelism: par})
				if err := f.Fit(d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	serial := runOnce(1)
	parallel := runOnce(workers)
	return entry{
		Name:         "ForestFit/100-trees",
		SerialNsOp:   serial,
		ParallelNsOp: parallel,
		Speedup:      speedup(serial, parallel),
		Workers:      workers,
	}
}

// fanoutWorkload builds the one-source, width-way fan-out benchmark
// workflow: each gated step burns CPU proportional to work before writing
// its output (the shape the parallel wave scheduler exists for).
func fanoutWorkload(width, work int) smartflux.BuildFunc {
	return func() (*smartflux.Workflow, *smartflux.Store, error) {
		store := smartflux.NewStore()
		wf := smartflux.NewWorkflow("fanout")
		src := &smartflux.Step{
			ID:      "src",
			Source:  true,
			Outputs: []smartflux.Container{{Table: "raw"}},
			Proc: smartflux.ProcessorFunc(func(ctx *smartflux.Context) error {
				t, err := ctx.Table("raw")
				if err != nil {
					return err
				}
				batch := smartflux.NewBatch()
				for i := 0; i < width; i++ {
					batch.PutFloat("k"+strconv.Itoa(i), "v", float64(ctx.Wave+i))
				}
				return t.Apply(batch)
			}),
		}
		if err := wf.AddStep(src); err != nil {
			return nil, nil, err
		}
		for i := 0; i < width; i++ {
			key := "k" + strconv.Itoa(i)
			out := "out" + strconv.Itoa(i)
			step := &smartflux.Step{
				ID:      smartflux.StepID("work" + strconv.Itoa(i)),
				Inputs:  []smartflux.Container{{Table: "raw", ColumnPrefix: key}},
				Outputs: []smartflux.Container{{Table: out}},
				QoD:     smartflux.QoD{MaxError: 0.05, Mode: smartflux.ModeAccumulate},
				Proc: smartflux.ProcessorFunc(func(ctx *smartflux.Context) error {
					raw, err := ctx.Table("raw")
					if err != nil {
						return err
					}
					dst, err := ctx.Table(out)
					if err != nil {
						return err
					}
					v, _ := raw.GetFloat(key, "v")
					acc := v
					for n := 0; n < work; n++ {
						acc = acc*1.0000001 + float64(n%7)
					}
					return dst.PutFloat("all", "x", acc)
				}),
			}
			if err := wf.AddStep(step); err != nil {
				return nil, nil, err
			}
		}
		if err := wf.Finalize(); err != nil {
			return nil, nil, err
		}
		return wf, store, nil
	}
}
