// Command sflint runs SmartFlux's project-specific static analyzers over
// the given package patterns and reports every violation of the repo's
// determinism and concurrency contracts.
//
// Usage:
//
//	sflint [flags] [packages]
//
//	sflint ./...                     # run the full suite
//	sflint -json ./... > report.json # machine-readable report (schema v1)
//	sflint -suppressions ./...       # audit every //sflint:ignore in the tree
//	sflint -disable locks ./...      # drop an analyzer
//	sflint -enable maporder ./...    # run only the named analyzers
//	sflint -only ./internal/... ./...# analyze only matching packages
//	sflint -diff origin/main ./...   # analyze only packages changed vs a ref
//	sflint -list                     # describe the suite
//
// Exit status: 0 when clean, 1 when diagnostics were reported, 2 on a
// load/typecheck/usage error.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"smartflux/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sflint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut  = fs.Bool("json", false, "emit the report as JSON (schema version 1)")
		listOnly = fs.Bool("list", false, "list the analyzers and exit")
		audit    = fs.Bool("suppressions", false, "list every //sflint:ignore directive instead of diagnostics")
		tests    = fs.Bool("tests", false, "also analyze in-package _test.go files")
		enable   = fs.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable  = fs.String("disable", "", "comma-separated analyzers to skip")
		chdir    = fs.String("C", "", "resolve package patterns in this directory")
		only     = fs.String("only", "", "comma-separated package patterns; analyze only matching packages\n(import path or ./dir form; exact, p/... prefix, or glob)")
		diffRef  = fs.String("diff", "", "analyze only packages with .go files changed vs this git ref\n(includes untracked files; combines with -only as a union)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, `usage: sflint [flags] [packages]

Runs SmartFlux's project-specific static analyzers over the given package
patterns (default "./..."). Diagnostics print as file:line:col [analyzer] msg.

Flags:
`)
		fs.PrintDefaults()
		fmt.Fprintf(stderr, `
Exit status:
  0  no diagnostics (clean, or every finding suppressed with a reason)
  1  one or more diagnostics were reported
  2  load, typecheck, git, or usage error
`)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listOnly {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := analysis.All()
	if *enable != "" {
		var err error
		analyzers, err = analysis.ByName(*enable)
		if err != nil {
			fmt.Fprintln(stderr, "sflint:", err)
			return 2
		}
	}
	if *disable != "" {
		skip, err := analysis.ByName(*disable)
		if err != nil {
			fmt.Fprintln(stderr, "sflint:", err)
			return 2
		}
		var kept []*analysis.Analyzer
		for _, a := range analyzers {
			skipped := false
			for _, s := range skip {
				if s == a {
					skipped = true
					break
				}
			}
			if !skipped {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}
	if len(analyzers) == 0 {
		fmt.Fprintln(stderr, "sflint: no analyzers enabled")
		return 2
	}

	var onlyPatterns []string
	for _, p := range strings.Split(*only, ",") {
		if p = strings.TrimSpace(p); p != "" {
			onlyPatterns = append(onlyPatterns, p)
		}
	}
	if *diffRef != "" {
		changed, err := changedPackagePatterns(*chdir, *diffRef)
		if err != nil {
			fmt.Fprintln(stderr, "sflint:", err)
			return 2
		}
		if len(changed) == 0 && len(onlyPatterns) == 0 {
			fmt.Fprintf(stdout, "sflint: no Go packages changed vs %s\n", *diffRef)
			return 0
		}
		onlyPatterns = append(onlyPatterns, changed...)
	}

	report, err := analysis.Run(analysis.Options{
		Dir:          *chdir,
		Patterns:     fs.Args(),
		Analyzers:    analyzers,
		IncludeTests: *tests,
		Only:         onlyPatterns,
	})
	if err != nil {
		fmt.Fprintln(stderr, "sflint:", err)
		return 2
	}

	if *audit {
		return printSuppressions(report, stdout, *jsonOut)
	}
	if *jsonOut {
		raw, err := report.JSON()
		if err != nil {
			fmt.Fprintln(stderr, "sflint:", err)
			return 2
		}
		fmt.Fprintln(stdout, string(raw))
	} else {
		for _, d := range report.Diagnostics {
			fmt.Fprintln(stdout, d)
		}
		if n := len(report.Suppressed); n > 0 {
			fmt.Fprintf(stdout, "sflint: %d finding(s) suppressed; run with -suppressions to audit\n", n)
		}
	}
	if len(report.Diagnostics) > 0 {
		return 1
	}
	return 0
}

// changedPackagePatterns maps the .go files changed versus ref — plus any
// untracked ones — to "./dir" package patterns for LoadConfig.Only. Paths
// come back relative to dir (git's --relative; ls-files is cwd-relative by
// default), so the patterns line up with the loader's Dir-relative matching.
// Deleted files still contribute their directory: the surviving files of
// that package must be re-analyzed. A directory that no longer holds a
// package simply matches nothing.
func changedPackagePatterns(dir, ref string) ([]string, error) {
	git := func(args ...string) ([]string, error) {
		cmd := exec.Command("git", args...)
		cmd.Dir = dir
		var stdout, stderrB bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderrB
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("git %s: %v: %s", strings.Join(args, " "), err, strings.TrimSpace(stderrB.String()))
		}
		var lines []string
		for _, l := range strings.Split(stdout.String(), "\n") {
			if l = strings.TrimSpace(l); l != "" {
				lines = append(lines, l)
			}
		}
		return lines, nil
	}
	tracked, err := git("diff", "--name-only", "--relative", ref, "--")
	if err != nil {
		return nil, err
	}
	untracked, err := git("ls-files", "--others", "--exclude-standard")
	if err != nil {
		return nil, err
	}
	dirs := make(map[string]bool)
	for _, f := range append(tracked, untracked...) {
		if !strings.HasSuffix(f, ".go") {
			continue
		}
		d := filepath.ToSlash(filepath.Dir(f))
		if d == "." {
			dirs["."] = true
		} else {
			dirs["./"+d] = true
		}
	}
	patterns := make([]string, 0, len(dirs))
	for d := range dirs {
		patterns = append(patterns, d)
	}
	sort.Strings(patterns)
	return patterns, nil
}

// printSuppressions renders the //sflint:ignore audit. The audit always
// exits 0: its job is visibility, not gating — but every entry it prints
// is a suppression that would otherwise be a diagnostic somewhere.
func printSuppressions(report *analysis.Report, stdout io.Writer, jsonOut bool) int {
	if jsonOut {
		raw, err := report.JSON()
		if err != nil {
			return 2
		}
		fmt.Fprintln(stdout, string(raw))
		return 0
	}
	if len(report.Suppressions) == 0 {
		fmt.Fprintln(stdout, "sflint: no suppressions in the analyzed packages")
		return 0
	}
	for _, s := range report.Suppressions {
		names := ""
		for i, a := range s.Analyzers {
			if i > 0 {
				names += ","
			}
			names += a
		}
		fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", s.Position.Filename, s.Position.Line, names, s.Reason)
	}
	fmt.Fprintf(stdout, "sflint: %d suppression(s) total\n", len(report.Suppressions))
	return 0
}
