package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// mod points at the self-contained sflint testdata module.
func mod(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("..", "..", "internal", "analysis", "testdata", "mod"))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitZeroOnCleanPackage(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-C", mod(t), "./clean")
	if code != 0 {
		t.Fatalf("exit = %d on clean package\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if strings.Contains(stdout, "[") {
		t.Errorf("clean run printed diagnostics: %s", stdout)
	}
}

func TestExitOneOnDiagnostics(t *testing.T) {
	code, stdout, _ := runCLI(t, "-C", mod(t), "./dirty")
	if code != 1 {
		t.Fatalf("exit = %d on dirty package, want 1\nstdout: %s", code, stdout)
	}
	for _, want := range []string{"[maporder]", "[errdrop]", "[goroleak]", "dirty.go:"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("human output missing %q:\n%s", want, stdout)
		}
	}
	// file:line:col prefix on every diagnostic line.
	for _, line := range strings.Split(strings.TrimSpace(stdout), "\n") {
		if strings.HasPrefix(line, "sflint:") {
			continue
		}
		if !strings.Contains(line, ".go:") {
			t.Errorf("diagnostic line lacks file:line:col: %q", line)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runCLI(t, "-json", "-C", mod(t), "./dirty")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var report struct {
		Version     int `json:"version"`
		Diagnostics []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
		Suppressed []struct {
			Reason string `json:"reason"`
		} `json:"suppressed"`
	}
	if err := json.Unmarshal([]byte(stdout), &report); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, stdout)
	}
	if report.Version != 1 {
		t.Errorf("schema version = %d, want 1", report.Version)
	}
	if len(report.Diagnostics) != 3 {
		t.Errorf("want 3 diagnostics, got %d", len(report.Diagnostics))
	}
	for _, d := range report.Diagnostics {
		if d.File == "" || d.Line == 0 || d.Col == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
	if len(report.Suppressed) != 1 || !strings.Contains(report.Suppressed[0].Reason, "proven elsewhere") {
		t.Errorf("suppressed finding missing its reason: %+v", report.Suppressed)
	}
}

func TestSuppressionsAudit(t *testing.T) {
	code, stdout, _ := runCLI(t, "-suppressions", "-C", mod(t), "./dirty")
	if code != 0 {
		t.Fatalf("audit exit = %d, want 0", code)
	}
	if !strings.Contains(stdout, "[maporder]") ||
		!strings.Contains(stdout, "order insensitivity proven elsewhere") ||
		!strings.Contains(stdout, "dirty.go:") {
		t.Errorf("audit output missing file:line, analyzer or reason:\n%s", stdout)
	}
	if !strings.Contains(stdout, "1 suppression(s) total") {
		t.Errorf("audit output missing total:\n%s", stdout)
	}
}

func TestEnableDisableFlags(t *testing.T) {
	code, stdout, _ := runCLI(t, "-enable", "goroleak", "-C", mod(t), "./dirty")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if strings.Contains(stdout, "[maporder]") || !strings.Contains(stdout, "[goroleak]") {
		t.Errorf("-enable goroleak ran the wrong analyzers:\n%s", stdout)
	}

	code, stdout, _ = runCLI(t, "-disable", "maporder,errdrop,goroleak", "-C", mod(t), "./dirty")
	if code != 0 {
		t.Fatalf("exit = %d with the firing analyzers disabled, want 0\n%s", code, stdout)
	}

	code, _, stderr := runCLI(t, "-enable", "nosuch", "-C", mod(t), "./dirty")
	if code != 2 || !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("unknown analyzer name: exit %d, stderr %q", code, stderr)
	}
}

func TestOnlyFlagImportPath(t *testing.T) {
	// The pattern set covers the whole module, but -only restricts analysis
	// to the flow package: dirty's findings must not appear.
	code, stdout, stderr := runCLI(t, "-C", mod(t), "-only", "sflintmod/flow", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if strings.Contains(stdout, "[maporder]") || strings.Contains(stdout, "dirty.go") {
		t.Errorf("-only sflintmod/flow leaked findings from other packages:\n%s", stdout)
	}
	if !strings.Contains(stdout, "[poolescape]") || !strings.Contains(stdout, "[ctxflow]") {
		t.Errorf("-only sflintmod/flow missing the flow package's findings:\n%s", stdout)
	}
}

func TestOnlyFlagDirPattern(t *testing.T) {
	code, stdout, _ := runCLI(t, "-C", mod(t), "-only", "./dirty", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "[maporder]") || strings.Contains(stdout, "flow.go") {
		t.Errorf("-only ./dirty analyzed the wrong packages:\n%s", stdout)
	}
}

func TestOnlyFlagNoMatchIsClean(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-C", mod(t), "-only", "sflintmod/nosuch", "./...")
	if code != 0 {
		t.Fatalf("exit = %d with no matching packages, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
}

// gitDiffRepo builds a throwaway module under git: package a (untouched,
// carries a finding), package b (modified after the commit, carries a
// finding), and later an untracked package c.
func gitDiffRepo(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	poolSrc := func(pkg string) string {
		return "package " + pkg + "\n\nimport \"sync\"\n\nvar p sync.Pool\n\n// Use returns a pooled value after recycling it.\nfunc Use() interface{} {\n\tv := p.Get()\n\tp.Put(v)\n\treturn v\n}\n"
	}
	files := map[string]string{
		"go.mod":   "module diffmod\n\ngo 1.24\n",
		"a/a.go":   poolSrc("a"),
		"b/b.go":   poolSrc("b"),
		"note.txt": "not a go file\n",
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, args := range [][]string{
		{"init", "-q"},
		{"add", "."},
		{"-c", "user.name=test", "-c", "user.email=test@test", "commit", "-q", "-m", "seed"},
	} {
		cmd := exec.Command("git", args...)
		cmd.Dir = dir
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("git %v: %v\n%s", args, err, out)
		}
	}
	return dir
}

func TestDiffFlag(t *testing.T) {
	dir := gitDiffRepo(t)

	// Nothing changed since the commit: exit 0 without loading anything.
	code, stdout, stderr := runCLI(t, "-C", dir, "-diff", "HEAD", "./...")
	if code != 0 || !strings.Contains(stdout, "no Go packages changed") {
		t.Fatalf("clean tree: exit %d, stdout %q, stderr %q", code, stdout, stderr)
	}

	// Touch b and drop an untracked package c: both are analyzed, the
	// untouched (and equally guilty) package a is not.
	b := filepath.Join(dir, "b", "b.go")
	src, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, append(src, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "c"), 0o755); err != nil {
		t.Fatal(err)
	}
	cSrc := "package c\n\nimport \"sync\"\n\nvar p sync.Pool\n\nfunc Use() interface{} {\n\tv := p.Get()\n\tp.Put(v)\n\treturn v\n}\n"
	if err := os.WriteFile(filepath.Join(dir, "c", "c.go"), []byte(cSrc), 0o644); err != nil {
		t.Fatal(err)
	}

	code, stdout, stderr = runCLI(t, "-C", dir, "-diff", "HEAD", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "b.go") || !strings.Contains(stdout, "c.go") {
		t.Errorf("-diff missed a changed or untracked package:\n%s", stdout)
	}
	if strings.Contains(stdout, "a.go") {
		t.Errorf("-diff analyzed the untouched package a:\n%s", stdout)
	}

	// A bad ref is a usage error, not a silent pass.
	code, _, stderr = runCLI(t, "-C", dir, "-diff", "nosuchref", "./...")
	if code != 2 || !strings.Contains(stderr, "git") {
		t.Errorf("bad ref: exit %d, stderr %q", code, stderr)
	}
}

func TestUsageDocumentsExitCodes(t *testing.T) {
	code, _, stderr := runCLI(t, "-h")
	if code != 2 {
		t.Fatalf("-h exit = %d, want 2 (flag package convention)", code)
	}
	for _, want := range []string{"Exit status", "0  no diagnostics", "1  one or more diagnostics", "2  load", "-only", "-diff"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("usage output missing %q:\n%s", want, stderr)
		}
	}
}

func TestExitTwoOnLoadError(t *testing.T) {
	code, _, stderr := runCLI(t, "-C", mod(t), "./nosuchpackage")
	if code != 2 {
		t.Fatalf("exit = %d on load error, want 2 (stderr: %s)", code, stderr)
	}
}

func TestListAnalyzers(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, name := range []string{"maporder", "nondeterm", "locks", "errdrop", "goroleak"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list missing analyzer %s:\n%s", name, stdout)
		}
	}
}
