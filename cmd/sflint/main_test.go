package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// mod points at the self-contained sflint testdata module.
func mod(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("..", "..", "internal", "analysis", "testdata", "mod"))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitZeroOnCleanPackage(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-C", mod(t), "./clean")
	if code != 0 {
		t.Fatalf("exit = %d on clean package\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if strings.Contains(stdout, "[") {
		t.Errorf("clean run printed diagnostics: %s", stdout)
	}
}

func TestExitOneOnDiagnostics(t *testing.T) {
	code, stdout, _ := runCLI(t, "-C", mod(t), "./dirty")
	if code != 1 {
		t.Fatalf("exit = %d on dirty package, want 1\nstdout: %s", code, stdout)
	}
	for _, want := range []string{"[maporder]", "[errdrop]", "[goroleak]", "dirty.go:"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("human output missing %q:\n%s", want, stdout)
		}
	}
	// file:line:col prefix on every diagnostic line.
	for _, line := range strings.Split(strings.TrimSpace(stdout), "\n") {
		if strings.HasPrefix(line, "sflint:") {
			continue
		}
		if !strings.Contains(line, ".go:") {
			t.Errorf("diagnostic line lacks file:line:col: %q", line)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runCLI(t, "-json", "-C", mod(t), "./dirty")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var report struct {
		Version     int `json:"version"`
		Diagnostics []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
		Suppressed []struct {
			Reason string `json:"reason"`
		} `json:"suppressed"`
	}
	if err := json.Unmarshal([]byte(stdout), &report); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, stdout)
	}
	if report.Version != 1 {
		t.Errorf("schema version = %d, want 1", report.Version)
	}
	if len(report.Diagnostics) != 3 {
		t.Errorf("want 3 diagnostics, got %d", len(report.Diagnostics))
	}
	for _, d := range report.Diagnostics {
		if d.File == "" || d.Line == 0 || d.Col == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
	if len(report.Suppressed) != 1 || !strings.Contains(report.Suppressed[0].Reason, "proven elsewhere") {
		t.Errorf("suppressed finding missing its reason: %+v", report.Suppressed)
	}
}

func TestSuppressionsAudit(t *testing.T) {
	code, stdout, _ := runCLI(t, "-suppressions", "-C", mod(t), "./dirty")
	if code != 0 {
		t.Fatalf("audit exit = %d, want 0", code)
	}
	if !strings.Contains(stdout, "[maporder]") ||
		!strings.Contains(stdout, "order insensitivity proven elsewhere") ||
		!strings.Contains(stdout, "dirty.go:") {
		t.Errorf("audit output missing file:line, analyzer or reason:\n%s", stdout)
	}
	if !strings.Contains(stdout, "1 suppression(s) total") {
		t.Errorf("audit output missing total:\n%s", stdout)
	}
}

func TestEnableDisableFlags(t *testing.T) {
	code, stdout, _ := runCLI(t, "-enable", "goroleak", "-C", mod(t), "./dirty")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if strings.Contains(stdout, "[maporder]") || !strings.Contains(stdout, "[goroleak]") {
		t.Errorf("-enable goroleak ran the wrong analyzers:\n%s", stdout)
	}

	code, stdout, _ = runCLI(t, "-disable", "maporder,errdrop,goroleak", "-C", mod(t), "./dirty")
	if code != 0 {
		t.Fatalf("exit = %d with the firing analyzers disabled, want 0\n%s", code, stdout)
	}

	code, _, stderr := runCLI(t, "-enable", "nosuch", "-C", mod(t), "./dirty")
	if code != 2 || !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("unknown analyzer name: exit %d, stderr %q", code, stderr)
	}
}

func TestExitTwoOnLoadError(t *testing.T) {
	code, _, stderr := runCLI(t, "-C", mod(t), "./nosuchpackage")
	if code != 2 {
		t.Fatalf("exit = %d on load error, want 2 (stderr: %s)", code, stderr)
	}
}

func TestListAnalyzers(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, name := range []string{"maporder", "nondeterm", "locks", "errdrop", "goroleak"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list missing analyzer %s:\n%s", name, stdout)
		}
	}
}
