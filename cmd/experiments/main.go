// Command experiments regenerates the tables and figures of the paper's
// evaluation section (§5). Select an experiment with -fig:
//
//	experiments -fig 3         # Figure 3 sensor series
//	experiments -fig roc       # §3.2 classifier selection table
//	experiments -fig 7         # correlation panels + Pearson r
//	experiments -fig 8         # learning curves
//	experiments -fig 9         # measured vs predicted errors
//	experiments -fig 10        # confidence curves
//	experiments -fig 11        # policy comparison
//	experiments -fig 12        # resource savings
//	experiments -fig overhead  # §5.3 overhead
//	experiments -fig all       # everything
//
// -scale shrinks wave counts for quick runs (e.g. -scale 0.2); -seed makes
// alternative deterministic universes; -j fans out independent (workload,
// bound) pipeline runs across that many goroutines without changing any
// figure's output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"smartflux/internal/experiments"
	"smartflux/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fig := fs.String("fig", "all", "experiment to run: 3, roc, 7, 8, 9, 10, 11, 12, overhead, all")
	seed := fs.Int64("seed", 42, "deterministic seed")
	scale := fs.Float64("scale", 1, "wave-count scale factor (1 = paper-length runs)")
	jobs := fs.Int("j", 0, "concurrent (workload, bound) pipeline runs: 0 = GOMAXPROCS, 1 = one at a time (output is identical either way)")
	obsAddr := fs.String("obs-addr", "", "serve /metrics, /trace/tail, /trace/spans and /debug/pprof on this address while experiments run")
	traceOut := fs.String("trace-out", "", "append decision-trace events from every pipeline as JSON lines to this file")
	spanOut := fs.String("span-out", "", "append causal spans (plus decision events) as JSON lines to this file, readable by sftrace; prefer -j 1 and a single -fig so runs don't interleave")
	if err := fs.Parse(args); err != nil {
		return err
	}

	observer, obsClose, err := buildObserver(*obsAddr, *traceOut, *spanOut, out)
	if err != nil {
		return err
	}
	defer obsClose()

	runner := experiments.NewRunner(experiments.Config{Seed: *seed, Scale: *scale, Jobs: *jobs, Obs: observer})
	selected := strings.Split(*fig, ",")
	all := *fig == "all"

	want := func(name string) bool {
		if all {
			return true
		}
		for _, s := range selected {
			if strings.TrimSpace(s) == name {
				return true
			}
		}
		return false
	}

	if err := runner.Prewarm(prewarmTargets(want)); err != nil {
		return err
	}

	ran := false
	if want("3") {
		experiments.Fig3(runner.Config()).Render(out)
		fmt.Fprintln(out)
		ran = true
	}
	if want("roc") {
		res, err := experiments.ClassifierSelection(runner, 0.20)
		if err != nil {
			return err
		}
		res.Render(out)
		fmt.Fprintln(out)
		ran = true
	}
	if want("7") {
		res, err := experiments.Fig7(runner, 0.20)
		if err != nil {
			return err
		}
		res.Render(out)
		fmt.Fprintln(out)
		ran = true
	}
	if want("8") {
		res, err := experiments.Fig8(runner)
		if err != nil {
			return err
		}
		res.Render(out)
		fmt.Fprintln(out)
		ran = true
	}
	if want("9") {
		res, err := experiments.Fig9(runner)
		if err != nil {
			return err
		}
		res.Render(out)
		fmt.Fprintln(out)
		ran = true
	}
	if want("10") {
		res, err := experiments.Fig10(runner)
		if err != nil {
			return err
		}
		res.Render(out)
		fmt.Fprintln(out)
		ran = true
	}
	if want("11") {
		res, err := experiments.Fig11(runner)
		if err != nil {
			return err
		}
		res.Render(out)
		fmt.Fprintln(out)
		ran = true
	}
	if want("12") {
		res, err := experiments.Fig12(runner)
		if err != nil {
			return err
		}
		res.Render(out)
		fmt.Fprintln(out)
		ran = true
	}
	if want("overhead") {
		for _, w := range []experiments.Workload{experiments.LRB, experiments.AQHI} {
			res, err := experiments.Overhead(runner, w)
			if err != nil {
				return err
			}
			res.Render(out)
			fmt.Fprintln(out)
		}
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *fig)
	}
	return nil
}

// buildObserver wires the -obs-addr/-trace-out/-span-out flags into one
// observer instrumenting every pipeline the runner executes; the returned
// close function flushes the JSONL files and stops the debug server. All
// three flags empty yields a nil observer (no instrumentation overhead).
func buildObserver(obsAddr, traceOut, spanOut string, out *os.File) (*obs.Observer, func(), error) {
	if obsAddr == "" && traceOut == "" && spanOut == "" {
		return nil, func() {}, nil
	}
	registry := obs.NewRegistry()
	var (
		sinks     []obs.Sink
		spanSinks []obs.SpanSink
		closers   []func()
	)
	closeAll := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return nil, closeAll, fmt.Errorf("trace-out: %w", err)
		}
		closers = append(closers, func() { _ = f.Close() })
		sinks = append(sinks, obs.NewJSONLSink(f))
	}
	if spanOut != "" {
		f, err := os.Create(spanOut)
		if err != nil {
			return nil, closeAll, fmt.Errorf("span-out: %w", err)
		}
		closers = append(closers, func() { _ = f.Close() })
		// One sink carries both record kinds so sftrace can correlate the
		// ε-spend timeline with skip decisions from a single file.
		spanl := obs.NewJSONLSink(f)
		sinks = append(sinks, spanl)
		spanSinks = append(spanSinks, spanl)
	}
	if obsAddr != "" {
		ring := obs.NewRingSink(4096)
		sinks = append(sinks, ring)
		spanRing := obs.NewSpanRing(4096)
		spanSinks = append(spanSinks, spanRing)
		srv, err := obs.StartDebugServer(obsAddr, registry, ring, spanRing)
		if err != nil {
			return nil, closeAll, fmt.Errorf("obs-addr: %w", err)
		}
		closers = append(closers, func() { _ = srv.Close() })
		fmt.Fprintf(out, "observability on http://%s (/metrics, /trace/tail, /trace/spans, /debug/pprof)\n", srv.Addr())
	}
	return obs.New(registry, sinks...).WithSpanSinks(spanSinks...), closeAll, nil
}

// prewarmTargets lists every (workload, bound) pipeline the selected figures
// will request, so Runner.Prewarm can fan them out under -j before the
// figures render sequentially. Duplicate targets are harmless: the runner's
// cache collapses them onto one run.
func prewarmTargets(want func(string) bool) []experiments.Target {
	bounds := map[float64]bool{}
	if want("roc") || want("7") {
		bounds[0.20] = true
	}
	if want("11") {
		bounds[0.05] = true
	}
	if want("8") || want("9") || want("10") || want("12") {
		for _, b := range experiments.Bounds {
			bounds[b] = true
		}
	}
	var targets []experiments.Target
	for _, b := range experiments.Bounds {
		if !bounds[b] {
			continue
		}
		for _, w := range []experiments.Workload{experiments.LRB, experiments.AQHI} {
			targets = append(targets, experiments.Target{Workload: w, Bound: b})
		}
	}
	return targets
}
