package main

import (
	"os"
	"strings"
	"testing"
)

// capture runs the CLI with stdout redirected to a pipe.
func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	runErr := run(args, w)
	w.Close()
	out := make([]byte, 1<<20)
	n, _ := r.Read(out)
	r.Close()
	return string(out[:n]), runErr
}

func TestRunFig3(t *testing.T) {
	out, err := capture(t, []string{"-fig", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 3") {
		t.Errorf("missing header:\n%s", out)
	}
}

func TestRunUnknownFig(t *testing.T) {
	if _, err := capture(t, []string{"-fig", "99"}); err == nil {
		t.Error("unknown figure must fail")
	}
}

func TestRunFigSelection(t *testing.T) {
	// Tiny scale keeps this a smoke test of flag plumbing and rendering.
	out, err := capture(t, []string{"-fig", "12", "-scale", "0.08", "-seed", "42"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 12") {
		t.Errorf("missing Figure 12 output:\n%s", out)
	}
}
