// Command wavegen dumps the deterministic workload traces as CSV for
// inspection and plotting (e.g. regenerating Figure 3's curves, or checking
// the traffic and pollution dynamics that drive the evaluation).
//
//	wavegen -workload firerisk -waves 48 > day.csv
//	wavegen -workload aqhi -waves 168 > week.csv
//	wavegen -workload lrb -waves 240 > traffic.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"smartflux/internal/aqhi"
	"smartflux/internal/firerisk"
	"smartflux/internal/lrb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wavegen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("wavegen", flag.ContinueOnError)
	workload := fs.String("workload", "firerisk", "workload: lrb, aqhi, firerisk")
	waves := fs.Int("waves", 48, "number of waves to dump")
	seed := fs.Int64("seed", 42, "deterministic seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	w := bufio.NewWriter(out)
	var err error
	switch *workload {
	case "firerisk":
		err = dumpFireRisk(w, *waves, *seed)
	case "aqhi":
		err = dumpAQHI(w, *waves, *seed)
	case "lrb":
		err = dumpLRB(w, *waves, *seed)
	default:
		err = fmt.Errorf("unknown workload %q", *workload)
	}
	if err != nil {
		return err
	}
	return w.Flush()
}

// dumpFireRisk writes grid-averaged temperature/precipitation/wind per wave.
func dumpFireRisk(w io.Writer, waves int, seed int64) error {
	gen := firerisk.NewGenerator(firerisk.Config{Seed: seed})
	const grid = 10
	fmt.Fprintln(w, "wave,hour,temperature_c,precipitation_mm,wind_kmh")
	for wave := 0; wave < waves; wave++ {
		var t, p, wd float64
		for x := 0; x < grid; x++ {
			for y := 0; y < grid; y++ {
				t += gen.Temperature(wave, x, y)
				p += gen.Precipitation(wave, x, y)
				wd += gen.Wind(wave, x, y)
			}
		}
		n := float64(grid * grid)
		fmt.Fprintf(w, "%d,%.1f,%.3f,%.4f,%.3f\n",
			wave, float64(wave%firerisk.WavesPerDay)/2, t/n, p/n, wd/n)
	}
	return nil
}

// dumpAQHI writes grid-averaged pollutant readings per wave.
func dumpAQHI(w io.Writer, waves int, seed int64) error {
	cfg := aqhi.Config{Seed: seed}
	gen := aqhi.NewGenerator(cfg)
	const grid = 12
	fmt.Fprintln(w, "wave,hour,o3,pm25,no2")
	for wave := 0; wave < waves; wave++ {
		var sums [3]float64
		for x := 0; x < grid; x++ {
			for y := 0; y < grid; y++ {
				for p := 0; p < 3; p++ {
					sums[p] += gen.Reading(wave, x, y, p)
				}
			}
		}
		n := float64(grid * grid)
		fmt.Fprintf(w, "%d,%d,%.3f,%.3f,%.3f\n",
			wave, wave%24, sums[0]/n, sums[1]/n, sums[2]/n)
	}
	return nil
}

// dumpLRB writes per-wave traffic aggregates: mean speed, stopped vehicles.
func dumpLRB(w io.Writer, waves int, seed int64) error {
	sim := lrb.NewSimulator(lrb.Config{Seed: seed})
	fmt.Fprintln(w, "wave,mean_speed_mph,stopped_vehicles")
	for wave := 0; wave < waves; wave++ {
		sim.Advance()
		reports := sim.Reports()
		var speed float64
		var stopped int
		for _, r := range reports {
			speed += r.Speed
			if r.Speed < 1 {
				stopped++
			}
		}
		fmt.Fprintf(w, "%d,%.3f,%d\n", wave, speed/float64(len(reports)), stopped)
	}
	return nil
}
