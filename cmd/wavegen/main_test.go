package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDumpsAllWorkloads(t *testing.T) {
	tests := []struct {
		workload string
		header   string
	}{
		{workload: "firerisk", header: "wave,hour,temperature_c"},
		{workload: "aqhi", header: "wave,hour,o3,pm25,no2"},
		{workload: "lrb", header: "wave,mean_speed_mph,stopped_vehicles"},
	}
	for _, tt := range tests {
		t.Run(tt.workload, func(t *testing.T) {
			var buf bytes.Buffer
			err := run([]string{"-workload", tt.workload, "-waves", "5"}, &buf)
			if err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
			if len(lines) != 6 { // header + 5 waves
				t.Fatalf("got %d lines, want 6:\n%s", len(lines), buf.String())
			}
			if !strings.HasPrefix(lines[0], tt.header) {
				t.Errorf("header = %q", lines[0])
			}
		})
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workload", "bogus"}, &buf); err == nil {
		t.Error("unknown workload must fail")
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-workload", "aqhi", "-waves", "10", "-seed", "3"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-workload", "aqhi", "-waves", "10", "-seed", "3"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed must produce identical traces")
	}
}
