// Command smartflux runs one of the built-in workloads under a chosen
// triggering policy and reports resource usage and bound compliance.
//
//	smartflux -workload lrb -bound 0.05 -policy smartflux -train 500 -apply 500
//	smartflux -workload aqhi -policy seq3 -apply 384
//	smartflux -workload firerisk -policy sync
//
// Policies: smartflux (train + adaptive execution), sync, random, seq2,
// seq3, seq5, oracle.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"smartflux"
	"smartflux/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "smartflux:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("smartflux", flag.ContinueOnError)
	workload := fs.String("workload", "aqhi", "workload: lrb, aqhi, firerisk")
	bound := fs.Float64("bound", 0.10, "maximum tolerated output error (maxε)")
	policy := fs.String("policy", "smartflux", "triggering policy: smartflux, sync, random, seqN, oracle")
	train := fs.Int("train", 336, "training waves (smartflux policy only)")
	apply := fs.Int("apply", 384, "application waves")
	seed := fs.Int64("seed", 42, "deterministic seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var build smartflux.BuildFunc
	var report smartflux.StepID
	switch *workload {
	case "lrb":
		build = workloads.LinearRoad(workloads.LinearRoadConfig{Seed: *seed, MaxError: *bound})
		report = workloads.LinearRoadClassify
	case "aqhi":
		build = workloads.AirQuality(workloads.AirQualityConfig{Seed: *seed, MaxError: *bound})
		report = workloads.AirQualityIndex
	case "firerisk":
		build = workloads.FireRisk(workloads.FireRiskConfig{Seed: *seed, MaxError: *bound})
		report = workloads.FireRiskOverall
	default:
		return fmt.Errorf("unknown workload %q", *workload)
	}

	if *policy == "smartflux" {
		res, err := smartflux.RunPipeline(build, []smartflux.StepID{report}, smartflux.PipelineConfig{
			TrainWaves: *train,
			ApplyWaves: *apply,
			Session: smartflux.SessionConfig{
				Seed:           *seed + 7,
				Thresholds:     []float64{0.15},
				PositiveWeight: 14,
			},
		})
		if err != nil {
			return err
		}
		macro := res.Test.Macro()
		fmt.Fprintf(out, "%s @ %.0f%% bound, policy smartflux\n", *workload, *bound*100)
		fmt.Fprintf(out, "  test phase: accuracy %.3f precision %.3f recall %.3f auc %.3f\n",
			macro.Accuracy, macro.Precision, macro.Recall, macro.AUC)
		printResult(out, res.Apply, report)
		return nil
	}

	decider, err := parsePolicy(*policy, *seed)
	if err != nil {
		return err
	}
	harness, err := smartflux.NewHarness(build, []smartflux.StepID{report})
	if err != nil {
		return err
	}
	res, err := harness.Run(*apply, decider)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s @ %.0f%% bound, policy %s\n", *workload, *bound*100, decider.Name())
	printResult(out, res, report)
	return nil
}

// parsePolicy resolves a policy name to a Decider.
func parsePolicy(name string, seed int64) (smartflux.Decider, error) {
	switch {
	case name == "sync":
		return smartflux.SyncPolicy(), nil
	case name == "random":
		return smartflux.RandomPolicy(0.5, seed+11), nil
	case name == "oracle":
		return smartflux.OraclePolicy(), nil
	case strings.HasPrefix(name, "seq"):
		n, err := strconv.Atoi(strings.TrimPrefix(name, "seq"))
		if err != nil {
			return nil, fmt.Errorf("bad seq policy %q", name)
		}
		return smartflux.SeqPolicy(n), nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

// printResult renders one harness result.
func printResult(out io.Writer, res *smartflux.Result, step smartflux.StepID) {
	fmt.Fprintf(out, "  executions: %d live, %d optimal, %d sync (%.0f%% saved)\n",
		res.TotalLiveExecutions(), res.TotalOptimalExecutions(),
		res.TotalSyncExecutions(), res.SavingsRatio()*100)
	report, ok := res.Reports[step]
	if !ok {
		return
	}
	conf := report.Confidence()
	fmt.Fprintf(out, "  %s: %d violations in %d waves (confidence %.1f%%)\n",
		step, report.ViolationCount(), len(report.Measured), conf[len(conf)-1]*100)
}
