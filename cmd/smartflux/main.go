// Command smartflux runs one of the built-in workloads under a chosen
// triggering policy and reports resource usage and bound compliance.
//
//	smartflux -workload lrb -bound 0.05 -policy smartflux -train 500 -apply 500
//	smartflux -workload aqhi -policy seq3 -apply 384
//	smartflux -workload firerisk -policy sync
//
// Policies: smartflux (train + adaptive execution), sync, random, seq2,
// seq3, seq5, oracle.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"smartflux"
	"smartflux/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "smartflux:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("smartflux", flag.ContinueOnError)
	workload := fs.String("workload", "aqhi", "workload: lrb, aqhi, firerisk")
	bound := fs.Float64("bound", 0.10, "maximum tolerated output error (maxε)")
	policy := fs.String("policy", "smartflux", "triggering policy: smartflux, sync, random, seqN, oracle")
	train := fs.Int("train", 336, "training waves (smartflux policy only)")
	apply := fs.Int("apply", 384, "application waves")
	seed := fs.Int64("seed", 42, "deterministic seed")
	parallelism := fs.Int("parallelism", 0, "per-wave worker bound: 0 = GOMAXPROCS, 1 = sequential (results are identical either way)")
	obsAddr := fs.String("obs-addr", "", "serve /metrics, /trace/tail, /trace/spans and /debug/pprof on this address (e.g. 127.0.0.1:8080)")
	traceOut := fs.String("trace-out", "", "append decision-trace events as JSON lines to this file")
	spanOut := fs.String("span-out", "", "append causal spans (plus decision events) as JSON lines to this file, readable by sftrace")
	stepTimeout := fs.Duration("step-timeout", 0, "per-step execution timeout (0 = unbounded)")
	retryMax := fs.Int("retry-max", 0, "extra attempts a failed or timed-out step gets within a wave")
	retryBackoff := fs.Duration("retry-backoff", 10*time.Millisecond, "base delay between step retries (doubles per attempt, seeded jitter)")
	retryWaves := fs.Int("retry-waves", 0, "times a failed wave is re-run from its pre-wave checkpoint")
	degrade := fs.Bool("degrade", false, "forcibly skip gated steps that exhaust their retries instead of failing the run")
	clusterShards := fs.Int("cluster", 0, "mirror the live store into an in-process replicated cluster with this many shards and verify dump equality at the end of the run")
	walDir := fs.String("wal-dir", "", "enable crash durability: write-ahead log + snapshots in this directory (smartflux policy only)")
	snapEvery := fs.Int("snapshot-every", 64, "waves between compacting snapshots (with -wal-dir)")
	fsyncFlag := fs.String("fsync", "commit", "WAL flush policy with -wal-dir: commit, always, never")
	resume := fs.Bool("resume", false, "continue a crashed run from the -wal-dir state instead of starting fresh")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var fsyncMode smartflux.FsyncMode
	if *walDir != "" {
		var err error
		if fsyncMode, err = smartflux.ParseFsyncMode(*fsyncFlag); err != nil {
			return err
		}
	} else if *resume {
		return fmt.Errorf("-resume requires -wal-dir")
	}
	resilience := smartflux.HarnessConfig{
		StepTimeout:  *stepTimeout,
		StepRetries:  *retryMax,
		RetryBackoff: *retryBackoff,
		RetrySeed:    *seed + 23,
		DegradeGated: *degrade,
		WaveRetries:  *retryWaves,
	}

	var (
		registry *smartflux.MetricsRegistry
		observer *smartflux.RunObserver
		jsonl    *smartflux.JSONLTraceSink
		spanl    *smartflux.JSONLTraceSink
	)
	if *obsAddr != "" || *traceOut != "" || *spanOut != "" {
		registry = smartflux.NewMetricsRegistry()
		var sinks []smartflux.TraceSink
		var spanSinks []smartflux.SpanSink
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return fmt.Errorf("trace-out: %w", err)
			}
			defer func() {
				// A failed close can silently truncate the JSONL trace.
				if cerr := f.Close(); cerr != nil {
					fmt.Fprintln(os.Stderr, "smartflux: trace-out close:", cerr)
				}
			}()
			jsonl = smartflux.NewJSONLTraceSink(f)
			sinks = append(sinks, jsonl)
		}
		if *spanOut != "" {
			f, err := os.Create(*spanOut)
			if err != nil {
				return fmt.Errorf("span-out: %w", err)
			}
			defer func() {
				if cerr := f.Close(); cerr != nil {
					fmt.Fprintln(os.Stderr, "smartflux: span-out close:", cerr)
				}
			}()
			// One sink carries both record kinds so sftrace can correlate
			// the ε-spend timeline with skip decisions from a single file.
			spanl = smartflux.NewJSONLTraceSink(f)
			sinks = append(sinks, spanl)
			spanSinks = append(spanSinks, spanl)
		}
		var spanRing *smartflux.SpanRing
		if *obsAddr != "" {
			ring := smartflux.NewTraceRing(4096)
			sinks = append(sinks, ring)
			spanRing = smartflux.NewSpanRing(4096)
			spanSinks = append(spanSinks, spanRing)
			srv, err := smartflux.StartDebugServer(*obsAddr, registry, ring, spanRing)
			if err != nil {
				return fmt.Errorf("obs-addr: %w", err)
			}
			defer func() { _ = srv.Close() }() // best-effort teardown at exit
			fmt.Fprintf(out, "observability on http://%s (/metrics, /trace/tail, /trace/spans, /debug/pprof)\n", srv.Addr())
		}
		observer = smartflux.NewRunObserver(registry, sinks...).WithSpanSinks(spanSinks...)
	}

	var build smartflux.BuildFunc
	var report smartflux.StepID
	switch *workload {
	case "lrb":
		build = workloads.LinearRoad(workloads.LinearRoadConfig{Seed: *seed, MaxError: *bound})
		report = workloads.LinearRoadClassify
	case "aqhi":
		build = workloads.AirQuality(workloads.AirQualityConfig{Seed: *seed, MaxError: *bound})
		report = workloads.AirQualityIndex
	case "firerisk":
		build = workloads.FireRisk(workloads.FireRiskConfig{Seed: *seed, MaxError: *bound})
		report = workloads.FireRiskOverall
	default:
		return fmt.Errorf("unknown workload %q", *workload)
	}

	// -cluster: start the in-process cluster and wrap the build so the live
	// instance's store — the harness's first build call — is captured for the
	// end-of-run dump comparison. The pipeline path mirrors through
	// PipelineConfig.Cluster; the plain-policy path attaches the mirror here.
	var rig *clusterRig
	var liveStore *smartflux.Store
	if *clusterShards > 0 {
		var err error
		if rig, err = startClusterRig(*clusterShards); err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
		defer rig.Close()
		inner := build
		pipeline := *policy == "smartflux"
		build = func() (*smartflux.Workflow, *smartflux.Store, error) {
			wf, store, err := inner()
			if err == nil && liveStore == nil {
				liveStore = store
				if !pipeline {
					if merr := rig.client.Mirror(store); merr != nil {
						return nil, nil, fmt.Errorf("cluster mirror: %w", merr)
					}
				}
			}
			return wf, store, err
		}
	}

	if *policy == "smartflux" {
		cfg := smartflux.PipelineConfig{
			TrainWaves: *train,
			ApplyWaves: *apply,
			Session: smartflux.SessionConfig{
				Seed:           *seed + 7,
				Thresholds:     []float64{0.15},
				PositiveWeight: 14,
			},
			Obs:         observer,
			Parallelism: *parallelism,
			Resilience:  resilience,
		}
		if rig != nil {
			cfg.Cluster = rig.client
		}
		var (
			res  *smartflux.PipelineResult
			info *smartflux.DurableRunInfo
			err  error
		)
		switch {
		case *walDir == "":
			res, err = smartflux.RunPipeline(build, []smartflux.StepID{report}, cfg)
		default:
			opts := smartflux.DurableOptions{
				Dir:           *walDir,
				SnapshotEvery: *snapEvery,
				Fsync:         fsyncMode,
				Obs:           observer,
			}
			if *resume {
				res, info, err = smartflux.ResumePipeline(build, []smartflux.StepID{report}, cfg, opts)
			} else {
				res, info, err = smartflux.RunPipelineDurable(build, []smartflux.StepID{report}, cfg, opts)
			}
		}
		if err != nil {
			return err
		}
		macro := res.Test.Macro()
		fmt.Fprintf(out, "%s @ %.0f%% bound, policy smartflux\n", *workload, *bound*100)
		fmt.Fprintf(out, "  test phase: accuracy %.3f precision %.3f recall %.3f auc %.3f\n",
			macro.Accuracy, macro.Precision, macro.Recall, macro.AUC)
		printDurability(out, info)
		printResult(out, res.Apply, report)
		printDecisionSummary(out, registry)
		if rig != nil {
			if err := rig.verify(out, liveStore); err != nil {
				return err
			}
		}
		return traceErr(jsonl, spanl)
	}

	decider, err := parsePolicy(*policy, *seed)
	if err != nil {
		return err
	}
	harnessCfg := resilience
	harnessCfg.Parallelism = *parallelism
	harness, err := smartflux.NewHarnessWithConfig(build, []smartflux.StepID{report}, harnessCfg)
	if err != nil {
		return err
	}
	if observer != nil {
		harness.Instrument(observer)
	}
	res, err := harness.Run(*apply, decider)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s @ %.0f%% bound, policy %s\n", *workload, *bound*100, decider.Name())
	printResult(out, res, report)
	printDecisionSummary(out, registry)
	if rig != nil {
		if err := rig.verify(out, liveStore); err != nil {
			return err
		}
	}
	return traceErr(jsonl, spanl)
}

// printDurability reports what the durability layer did: the one-line
// recovery summary on resumed runs, then the WAL/snapshot tallies.
func printDurability(out io.Writer, info *smartflux.DurableRunInfo) {
	if info == nil {
		return
	}
	if info.Resumed {
		r := info.Recovery
		fmt.Fprintf(out, "  recovered: wave %d from snapshot epoch %d (%d records replayed, %d discarded, %d bytes truncated) in %s\n",
			r.Wave, r.Epoch, r.Replayed, r.Discarded, r.TruncatedBytes, r.Duration.Round(time.Microsecond))
	}
	fmt.Fprintf(out, "  durability: %d WAL appends, %d fsyncs, %d commits, %d snapshots\n",
		info.Durable.Appends, info.Durable.Fsyncs, info.Durable.Commits, info.Durable.Snapshots)
}

// printDecisionSummary reports exec/skip counts and the p95 decision latency
// collected by the observer, if one was attached.
func printDecisionSummary(out io.Writer, reg *smartflux.MetricsRegistry) {
	if reg == nil {
		return
	}
	snap := reg.Snapshot()
	execs := snap.Counters[`smartflux_engine_decisions_total{verdict="exec"}`]
	skips := snap.Counters[`smartflux_engine_decisions_total{verdict="skip"}`]
	lat := snap.Histograms["smartflux_engine_decision_latency_seconds"]
	fmt.Fprintf(out, "  decisions: %d exec, %d skip; p95 decision latency %.1fµs\n",
		execs, skips, lat.P95*1e6)
	retries := snap.Counters["smartflux_engine_step_retries_total"]
	degraded := snap.Counters["smartflux_engine_steps_degraded_total"]
	waveRetries := snap.Counters["smartflux_engine_wave_retries_total"]
	if retries+degraded+waveRetries > 0 {
		fmt.Fprintf(out, "  resilience: %d step retries, %d degraded steps, %d wave retries\n",
			retries, degraded, waveRetries)
	}
}

// traceErr surfaces a deferred trace- or span-sink write error, if any.
func traceErr(sinks ...*smartflux.JSONLTraceSink) error {
	for _, s := range sinks {
		if s == nil {
			continue
		}
		if err := s.Err(); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
	}
	return nil
}

// parsePolicy resolves a policy name to a Decider.
func parsePolicy(name string, seed int64) (smartflux.Decider, error) {
	switch {
	case name == "sync":
		return smartflux.SyncPolicy(), nil
	case name == "random":
		return smartflux.RandomPolicy(0.5, seed+11), nil
	case name == "oracle":
		return smartflux.OraclePolicy(), nil
	case strings.HasPrefix(name, "seq"):
		n, err := strconv.Atoi(strings.TrimPrefix(name, "seq"))
		if err != nil {
			return nil, fmt.Errorf("bad seq policy %q", name)
		}
		return smartflux.SeqPolicy(n), nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

// printResult renders one harness result.
func printResult(out io.Writer, res *smartflux.Result, step smartflux.StepID) {
	fmt.Fprintf(out, "  executions: %d live, %d optimal, %d sync (%.0f%% saved)\n",
		res.TotalLiveExecutions(), res.TotalOptimalExecutions(),
		res.TotalSyncExecutions(), res.SavingsRatio()*100)
	report, ok := res.Reports[step]
	if !ok {
		return
	}
	conf := report.Confidence()
	fmt.Fprintf(out, "  %s: %d violations in %d waves (confidence %.1f%%)\n",
		step, report.ViolationCount(), len(report.Measured), conf[len(conf)-1]*100)
}
