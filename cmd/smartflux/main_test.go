package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunNaivePolicies(t *testing.T) {
	for _, policy := range []string{"sync", "seq3", "random", "oracle"} {
		t.Run(policy, func(t *testing.T) {
			var buf bytes.Buffer
			err := run([]string{
				"-workload", "firerisk", "-policy", policy, "-apply", "20",
			}, &buf)
			if err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if !strings.Contains(out, "policy "+policy) {
				t.Errorf("output missing policy header:\n%s", out)
			}
			if !strings.Contains(out, "executions:") {
				t.Errorf("output missing executions line:\n%s", out)
			}
		})
	}
}

func TestRunSmartfluxPolicy(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-workload", "firerisk", "-policy", "smartflux",
		"-train", "60", "-apply", "30",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "test phase:") {
		t.Errorf("missing test-phase line:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workload", "bogus"}, &buf); err == nil {
		t.Error("unknown workload must fail")
	}
	if err := run([]string{"-policy", "bogus", "-apply", "1"}, &buf); err == nil {
		t.Error("unknown policy must fail")
	}
	if err := run([]string{"-policy", "seqX", "-apply", "1"}, &buf); err == nil {
		t.Error("malformed seq policy must fail")
	}
	if err := run([]string{"-wal-dir", t.TempDir(), "-fsync", "bogus", "-apply", "1"}, &buf); err == nil {
		t.Error("bad fsync mode must fail")
	}
	if err := run([]string{"-resume", "-apply", "1"}, &buf); err == nil {
		t.Error("-resume without -wal-dir must fail")
	}
	if err := run([]string{"-resume", "-wal-dir", t.TempDir(), "-train", "10", "-apply", "1"}, &buf); err == nil {
		t.Error("-resume with no durable state must fail")
	}
}

func TestRunDurableAndResume(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	args := []string{
		"-workload", "firerisk", "-policy", "smartflux",
		"-train", "60", "-apply", "30", "-wal-dir", dir,
	}
	var fresh bytes.Buffer
	if err := run(args, &fresh); err != nil {
		t.Fatal(err)
	}
	out := fresh.String()
	if !strings.Contains(out, "durability:") || !strings.Contains(out, "snapshots") {
		t.Errorf("missing durability summary:\n%s", out)
	}
	if strings.Contains(out, "recovered:") {
		t.Errorf("fresh run must not print a recovery line:\n%s", out)
	}

	// A second fresh run over live state must refuse and direct to -resume.
	var again bytes.Buffer
	if err := run(args, &again); err == nil || !strings.Contains(err.Error(), "resume") {
		t.Fatalf("fresh run over existing state: %v", err)
	}

	// Resuming replays the checkpoint and reproduces the same results.
	var resumed bytes.Buffer
	if err := run(append(args, "-resume"), &resumed); err != nil {
		t.Fatal(err)
	}
	rout := resumed.String()
	if !strings.Contains(rout, "recovered: wave 90") {
		t.Errorf("missing one-line recovery summary:\n%s", rout)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.Contains(line, "durability:") {
			continue // WAL tallies legitimately differ on resume
		}
		if !strings.Contains(rout, line) {
			t.Errorf("resumed output missing line %q:\n%s", line, rout)
		}
	}

	// -snapshot-every and -fsync are accepted and produce extra snapshots.
	dir2 := filepath.Join(t.TempDir(), "wal")
	var dense bytes.Buffer
	if err := run([]string{
		"-workload", "firerisk", "-policy", "smartflux",
		"-train", "40", "-apply", "10", "-wal-dir", dir2,
		"-snapshot-every", "8", "-fsync", "never",
	}, &dense); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dense.String(), "0 fsyncs") {
		t.Errorf("-fsync never should record 0 fsyncs:\n%s", dense.String())
	}
}

func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]string{
		"sync":   "sync",
		"random": "random",
		"seq4":   "seq4",
		"oracle": "oracle",
	} {
		p, err := parsePolicy(name, 1)
		if err != nil {
			t.Errorf("parsePolicy(%q): %v", name, err)
			continue
		}
		if p.Name() != want {
			t.Errorf("policy name = %q, want %q", p.Name(), want)
		}
	}
}

func TestRunWithObservability(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	var buf bytes.Buffer
	err := run([]string{
		"-workload", "firerisk", "-policy", "seq3", "-apply", "15",
		"-obs-addr", "127.0.0.1:0", "-trace-out", trace,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "observability on http://") {
		t.Errorf("missing debug-server line:\n%s", out)
	}
	if !strings.Contains(out, "decisions:") || !strings.Contains(out, "p95 decision latency") {
		t.Errorf("missing decision summary:\n%s", out)
	}

	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// firerisk has gated steps; every (wave, gated step) pair traces one event.
	if len(lines) == 0 || len(lines)%15 != 0 {
		t.Fatalf("trace has %d lines, want a positive multiple of 15 waves", len(lines))
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("trace line not JSON: %v", err)
	}
	for _, key := range []string{"type", "wave", "step", "policy", "iota", "verdict", "max_eps"} {
		if _, ok := ev[key]; !ok {
			t.Errorf("trace event missing %q: %s", key, lines[0])
		}
	}
}

func TestRunSmartfluxPolicyTraced(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	var buf bytes.Buffer
	err := run([]string{
		"-workload", "firerisk", "-policy", "smartflux",
		"-train", "60", "-apply", "20", "-trace-out", trace,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var predicted bool
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var ev struct {
			PredictedLabel int `json:"predicted_label"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.PredictedLabel == 0 || ev.PredictedLabel == 1 {
			predicted = true
		}
	}
	if !predicted {
		t.Error("smartflux run should trace predictor labels in application phase")
	}
}
