package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunNaivePolicies(t *testing.T) {
	for _, policy := range []string{"sync", "seq3", "random", "oracle"} {
		t.Run(policy, func(t *testing.T) {
			var buf bytes.Buffer
			err := run([]string{
				"-workload", "firerisk", "-policy", policy, "-apply", "20",
			}, &buf)
			if err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if !strings.Contains(out, "policy "+policy) {
				t.Errorf("output missing policy header:\n%s", out)
			}
			if !strings.Contains(out, "executions:") {
				t.Errorf("output missing executions line:\n%s", out)
			}
		})
	}
}

func TestRunSmartfluxPolicy(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-workload", "firerisk", "-policy", "smartflux",
		"-train", "60", "-apply", "30",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "test phase:") {
		t.Errorf("missing test-phase line:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workload", "bogus"}, &buf); err == nil {
		t.Error("unknown workload must fail")
	}
	if err := run([]string{"-policy", "bogus", "-apply", "1"}, &buf); err == nil {
		t.Error("unknown policy must fail")
	}
	if err := run([]string{"-policy", "seqX", "-apply", "1"}, &buf); err == nil {
		t.Error("malformed seq policy must fail")
	}
}

func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]string{
		"sync":   "sync",
		"random": "random",
		"seq4":   "seq4",
		"oracle": "oracle",
	} {
		p, err := parsePolicy(name, 1)
		if err != nil {
			t.Errorf("parsePolicy(%q): %v", name, err)
			continue
		}
		if p.Name() != want {
			t.Errorf("policy name = %q, want %q", p.Name(), want)
		}
	}
}
