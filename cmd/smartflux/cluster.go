package main

// -cluster support: run the pipeline with its live store mirrored into an
// in-process sharded, replicated kvstore cluster, and verify the determinism
// contract (DESIGN.md §14) at the end of the run — the cluster's merged dump
// must be bit-identical to the live store, version histories and logical
// timestamps included.

import (
	"bytes"
	"fmt"
	"io"

	"smartflux"
	"smartflux/internal/kvstore"
	"smartflux/internal/kvstore/cluster"
)

// clusterRig is an in-process cluster: shards primaries, each with an
// attached follower, and a cluster client routing over them.
type clusterRig struct {
	primaries []*cluster.Node
	followers []*cluster.Node
	client    *cluster.Client
}

// startClusterRig brings up shards primary+follower pairs and a client.
func startClusterRig(shards int) (*clusterRig, error) {
	rig := &clusterRig{}
	addrs := make([]string, 0, shards)
	for s := 0; s < shards; s++ {
		p, err := cluster.NewNode(cluster.NodeConfig{Label: fmt.Sprintf("shard%d", s)})
		if err != nil {
			rig.Close()
			return nil, err
		}
		rig.primaries = append(rig.primaries, p)
		addrs = append(addrs, p.Addr())
	}
	m := cluster.NewMap(addrs)
	for s := 0; s < shards; s++ {
		f, err := cluster.NewNode(cluster.NodeConfig{Label: fmt.Sprintf("shard%d-replica", s)})
		if err != nil {
			rig.Close()
			return nil, err
		}
		rig.followers = append(rig.followers, f)
		if err := rig.primaries[s].AttachFollower(f.Addr()); err != nil {
			rig.Close()
			return nil, err
		}
		if err := m.SetReplica(s, f.Addr()); err != nil {
			rig.Close()
			return nil, err
		}
	}
	c, err := cluster.New(cluster.Config{Map: m})
	if err != nil {
		rig.Close()
		return nil, err
	}
	rig.client = c
	return rig, nil
}

// Close tears the rig down; safe on a partially constructed rig.
func (r *clusterRig) Close() {
	if r.client != nil {
		_ = r.client.Close()
	}
	for _, n := range r.primaries {
		_ = n.Close()
	}
	for _, n := range r.followers {
		_ = n.Close()
	}
}

// verify checks the cluster's merged dump against the live store and prints
// the result. A mismatch is an error: the determinism contract is broken.
func (r *clusterRig) verify(out io.Writer, live *kvstore.Store) error {
	if err := r.client.Err(); err != nil {
		return fmt.Errorf("cluster: mirror ship failed during the run: %w", err)
	}
	var want, got bytes.Buffer
	var cells int
	for _, name := range live.TableNames() {
		tbl, err := live.Table(name)
		if err != nil {
			return err
		}
		for _, c := range tbl.Scan(smartflux.ScanOptions{}) {
			for _, v := range tbl.GetVersions(c.Row, c.Column, 0) {
				fmt.Fprintf(&want, "%s %s/%s @%d = %x\n", name, c.Row, c.Column, v.Timestamp, v.Value)
				cells++
			}
		}
		cs, err := r.client.ScanVersions(name, smartflux.ScanOptions{})
		if err != nil {
			return fmt.Errorf("cluster: scan %s: %w", name, err)
		}
		for _, c := range cs {
			fmt.Fprintf(&got, "%s %s/%s @%d = %x\n", name, c.Row, c.Column, c.Version.Timestamp, c.Version.Value)
		}
	}
	if want.String() != got.String() {
		return fmt.Errorf("cluster: merged dump diverged from the live store (%d shards)", len(r.primaries))
	}
	fmt.Fprintf(out, "  cluster: %d shards, replicated; merged dump bit-identical to live store (%d cell versions)\n",
		len(r.primaries), cells)
	return nil
}
