// Command kvcluster launches a sharded, replicated kvstore cluster
// (DESIGN.md §14) in one process: N primary nodes, optionally each with an
// attached follower, and the versioned partition map a cluster client routes
// by. The map is printed as JSON (and optionally written to a file) so
// clients in other processes can pick it up, then the cluster serves until
// SIGINT/SIGTERM.
//
//	kvcluster -shards 3 -replicate
//	kvcluster -shards 3 -replicate -map-out cluster-map.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"smartflux/internal/kvstore/cluster"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "kvcluster:", err)
		os.Exit(1)
	}
}

// run starts the cluster and blocks until a signal arrives. ready, when
// non-nil, receives the encoded partition map once serving (test hook).
func run(args []string, out io.Writer, ready chan<- []byte) error {
	fs := flag.NewFlagSet("kvcluster", flag.ContinueOnError)
	shards := fs.Int("shards", 3, "number of shards (primary nodes)")
	replicate := fs.Bool("replicate", true, "attach a follower to every primary and record it in the map")
	mapOut := fs.String("map-out", "", "also write the partition map JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards <= 0 {
		return fmt.Errorf("-shards must be positive, got %d", *shards)
	}

	var nodes []*cluster.Node
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()
	addrs := make([]string, 0, *shards)
	for s := 0; s < *shards; s++ {
		n, err := cluster.NewNode(cluster.NodeConfig{Label: fmt.Sprintf("shard%d", s)})
		if err != nil {
			return fmt.Errorf("start shard %d: %w", s, err)
		}
		nodes = append(nodes, n)
		addrs = append(addrs, n.Addr())
		fmt.Fprintf(out, "shard %d primary %s\n", s, n.Addr())
	}
	m := cluster.NewMap(addrs)
	if *replicate {
		for s := 0; s < *shards; s++ {
			f, err := cluster.NewNode(cluster.NodeConfig{Label: fmt.Sprintf("shard%d-replica", s)})
			if err != nil {
				return fmt.Errorf("start shard %d replica: %w", s, err)
			}
			nodes = append(nodes, f)
			if err := nodes[s].AttachFollower(f.Addr()); err != nil {
				return fmt.Errorf("attach shard %d replica: %w", s, err)
			}
			if err := m.SetReplica(s, f.Addr()); err != nil {
				return err
			}
			fmt.Fprintf(out, "shard %d replica %s\n", s, f.Addr())
		}
	}

	encoded := m.Encode()
	// Seed every node with the map so late-joining clients can OpMapGet it
	// from any member.
	for s := 0; s < *shards; s++ {
		nodes[s].SetMap(m)
	}
	fmt.Fprintf(out, "partition map: %s\n", encoded)
	if *mapOut != "" {
		if err := os.WriteFile(*mapOut, encoded, 0o644); err != nil {
			return fmt.Errorf("map-out: %w", err)
		}
	}
	if ready != nil {
		ready <- encoded
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(out, "received %s, shutting down\n", s)
	return nil
}
