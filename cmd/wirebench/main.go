// Command wirebench measures the kvnet wire overhaul (DESIGN.md §13): the
// legacy synchronous gob protocol (reimplemented here as the baseline — the
// tree no longer ships it) against the binary framed codec, synchronous and
// pipelined, at increasing client concurrency. It reports ops/sec and
// latency percentiles per configuration and writes a JSON report
// (BENCH_PR7.json) recording the perf trajectory ROADMAP asks for.
//
// The ≥8-client configurations are gated on GOMAXPROCS >= 4 (on a
// single-core box they measure scheduler contention, not the wire); pass
// -force to run them anyway.
package main

import (
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"smartflux/internal/kvstore"
	"smartflux/internal/kvstore/kvnet"
)

// valueSize is the payload size of benchmarked puts; reads return the same.
const valueSize = 128

// pipelineDepth is how many concurrent ops each pipelined client keeps in
// flight.
const pipelineDepth = 16

type result struct {
	Name      string  `json:"name"`
	Protocol  string  `json:"protocol"` // "gob" or "binary"
	Mode      string  `json:"mode"`     // "sync" or "pipelined"
	Clients   int     `json:"clients"`
	Ops       int     `json:"ops"` // total ops across clients
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Micros float64 `json:"p50_us"`
	P95Micros float64 `json:"p95_us"`
	P99Micros float64 `json:"p99_us"`
}

type report struct {
	GoVersion     string   `json:"go_version"`
	GOMAXPROCS    int      `json:"gomaxprocs"`
	NumCPU        int      `json:"num_cpu"`
	Note          string   `json:"note"`
	Skipped       []string `json:"skipped,omitempty"`
	SpeedupVsGob8 float64  `json:"speedup_vs_gob_8c,omitempty"`
	Benchmarks    []result `json:"benchmarks"`
}

func main() {
	fs := flag.NewFlagSet("wirebench", flag.ExitOnError)
	out := fs.String("out", "BENCH_PR7.json", "output JSON path")
	opsPerClient := fs.Int("ops", 2000, "operations per client")
	force := fs.Bool("force", false, "run >=8-client benches even when GOMAXPROCS < 4")
	smoke := fs.Bool("smoke", false, "tiny op counts; correctness smoke, numbers meaningless")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this path")
	match := fs.String("match", "", "only run benchmarks whose name contains this substring")
	_ = fs.Parse(os.Args[1:])

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wirebench:", err)
			os.Exit(1)
		}
		defer func() { _ = f.Close() }()
		_ = pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
	}

	if *smoke {
		*opsPerClient = 20
	}
	rep := report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Note: "mixed 50/50 put+get workload, 128B values, loopback TCP; " +
			"gob-sync is the pre-overhaul wire reimplemented as baseline",
	}
	if *smoke {
		rep.Note += "; SMOKE RUN (tiny op counts, numbers meaningless)"
	}

	type bench struct {
		protocol, mode string
	}
	benches := []bench{{"gob", "sync"}, {"binary", "sync"}, {"binary", "pipelined"}}
	for _, clients := range []int{1, 8, 64} {
		if clients >= 8 && rep.GOMAXPROCS < 4 && !*force {
			msg := fmt.Sprintf("%d-client benches skipped: GOMAXPROCS %d < 4 (use -force)", clients, rep.GOMAXPROCS)
			fmt.Fprintln(os.Stderr, "wirebench: "+msg)
			rep.Skipped = append(rep.Skipped, msg)
			continue
		}
		for _, b := range benches {
			name := fmt.Sprintf("%s-%s/%dc", b.protocol, b.mode, clients)
			if *match != "" && !strings.Contains(name, *match) {
				continue
			}
			r, err := runBench(b.protocol, b.mode, clients, *opsPerClient)
			if err != nil {
				fmt.Fprintf(os.Stderr, "wirebench: %s/%dc: %v\n", b.protocol+"-"+b.mode, clients, err)
				os.Exit(1)
			}
			rep.Benchmarks = append(rep.Benchmarks, r)
			fmt.Printf("%-22s %9.0f ops/s   p50 %7.1fµs  p95 %7.1fµs  p99 %7.1fµs\n",
				r.Name, r.OpsPerSec, r.P50Micros, r.P95Micros, r.P99Micros)
		}
	}

	var gob8, bin8 float64
	for _, r := range rep.Benchmarks {
		if r.Clients == 8 && r.Protocol == "gob" {
			gob8 = r.OpsPerSec
		}
		if r.Clients == 8 && r.Protocol == "binary" && r.Mode == "pipelined" {
			bin8 = r.OpsPerSec
		}
	}
	if gob8 > 0 && bin8 > 0 {
		rep.SpeedupVsGob8 = bin8 / gob8
		fmt.Printf("binary-pipelined vs gob-sync at 8 clients: %.2fx\n", rep.SpeedupVsGob8)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "wirebench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "wirebench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}

// runBench drives one (protocol, mode, clients) cell: every client runs
// opsPerClient mixed put/get ops against a fresh store and server, and
// every op's latency lands in one pool for the percentiles.
func runBench(protocol, mode string, clients, opsPerClient int) (result, error) {
	store := kvstore.New()
	if _, err := store.EnsureTable("bench", kvstore.TableOptions{}); err != nil {
		return result{}, err
	}

	var addr string
	var shutdown func()
	switch protocol {
	case "gob":
		srv, err := newGobServer(store)
		if err != nil {
			return result{}, err
		}
		addr, shutdown = srv.addr, srv.close
	default:
		srv := kvnet.NewServer(store)
		a, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return result{}, err
		}
		addr, shutdown = a, func() { _ = srv.Close() }
	}
	defer shutdown()

	value := make([]byte, valueSize)
	for i := range value {
		value[i] = byte(i)
	}

	latencies := make([][]float64, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lat := make([]float64, 0, opsPerClient)
			defer func() { latencies[c] = lat }()
			var latMu sync.Mutex

			oneOp := func(cl opClient, i int) error {
				row := fmt.Sprintf("r%03d-%04d", c, i%512)
				t0 := time.Now()
				var err error
				if i%2 == 0 {
					err = cl.put("bench", row, "v", value)
				} else {
					_, _, err = cl.get("bench", row, "v")
				}
				d := float64(time.Since(t0)) / float64(time.Microsecond)
				latMu.Lock()
				lat = append(lat, d)
				latMu.Unlock()
				return err
			}

			cl, err := dialBench(protocol, addr)
			if err != nil {
				errs[c] = err
				return
			}
			defer cl.close()

			if mode == "pipelined" {
				var cwg sync.WaitGroup
				perWorker := opsPerClient / pipelineDepth
				if perWorker == 0 {
					perWorker = 1
				}
				werrs := make([]error, pipelineDepth)
				for w := 0; w < pipelineDepth; w++ {
					cwg.Add(1)
					go func(w int) {
						defer cwg.Done()
						for i := 0; i < perWorker; i++ {
							if err := oneOp(cl, w*perWorker+i); err != nil {
								werrs[w] = err
								return
							}
						}
					}(w)
				}
				cwg.Wait()
				for _, err := range werrs {
					if err != nil {
						errs[c] = err
						return
					}
				}
				return
			}
			for i := 0; i < opsPerClient; i++ {
				if err := oneOp(cl, i); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return result{}, err
		}
	}

	var all []float64
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Float64s(all)
	total := len(all)
	return result{
		Name:      fmt.Sprintf("%s-%s/%dc", protocol, mode, clients),
		Protocol:  protocol,
		Mode:      mode,
		Clients:   clients,
		Ops:       total,
		OpsPerSec: float64(total) / elapsed.Seconds(),
		P50Micros: percentile(all, 0.50),
		P95Micros: percentile(all, 0.95),
		P99Micros: percentile(all, 0.99),
	}, nil
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// opClient is the minimal surface both protocols expose to the workload.
type opClient interface {
	put(table, row, column string, value []byte) error
	get(table, row, column string) ([]byte, bool, error)
	close() error
}

func dialBench(protocol, addr string) (opClient, error) {
	if protocol == "gob" {
		return dialGob(addr)
	}
	c, err := kvnet.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &binaryClient{c}, nil
}

type binaryClient struct{ c *kvnet.Client }

func (b *binaryClient) put(table, row, column string, value []byte) error {
	return b.c.Put(table, row, column, value)
}
func (b *binaryClient) get(table, row, column string) ([]byte, bool, error) {
	return b.c.Get(table, row, column)
}
func (b *binaryClient) close() error { return b.c.Close() }

// --- legacy gob baseline -------------------------------------------------
//
// A faithful miniature of the pre-overhaul kvnet wire: reflective gob
// request/response structs on a strictly synchronous one-op-per-round-trip
// loop, requests serialized behind a client mutex.

type gobRequest struct {
	Op     int // 1 = put, 2 = get
	Table  string
	Row    string
	Column string
	Value  []byte
}

type gobResponse struct {
	Err   string
	Value []byte
	Found bool
}

type gobServer struct {
	store *kvstore.Store
	ln    net.Listener
	addr  string
	wg    sync.WaitGroup
}

func newGobServer(store *kvstore.Store) (*gobServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &gobServer{store: store, ln: ln, addr: ln.Addr().String()}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

func (s *gobServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
		}()
	}
}

func (s *gobServer) serve(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req gobRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp gobResponse
		t, err := s.store.Table(req.Table)
		if err != nil {
			resp.Err = err.Error()
		} else if req.Op == 1 {
			if err := t.Put(req.Row, req.Column, req.Value); err != nil {
				resp.Err = err.Error()
			}
		} else {
			resp.Value, resp.Found = t.Get(req.Row, req.Column)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *gobServer) close() {
	_ = s.ln.Close()
	s.wg.Wait()
}

type gobClient struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

func dialGob(addr string) (opClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &gobClient{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

func (c *gobClient) roundTrip(req gobRequest) (gobResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return gobResponse{}, err
	}
	var resp gobResponse
	if err := c.dec.Decode(&resp); err != nil {
		return gobResponse{}, err
	}
	return resp, nil
}

func (c *gobClient) put(table, row, column string, value []byte) error {
	resp, err := c.roundTrip(gobRequest{Op: 1, Table: table, Row: row, Column: column, Value: value})
	if err == nil && resp.Err != "" {
		err = fmt.Errorf("%s", resp.Err)
	}
	return err
}

func (c *gobClient) get(table, row, column string) ([]byte, bool, error) {
	resp, err := c.roundTrip(gobRequest{Op: 2, Table: table, Row: row, Column: column})
	if err == nil && resp.Err != "" {
		err = fmt.Errorf("%s", resp.Err)
	}
	return resp.Value, resp.Found, err
}

func (c *gobClient) close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}
