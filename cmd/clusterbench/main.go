// Command clusterbench measures the sharded kvstore cluster (DESIGN.md §14):
// replicated write throughput at 1 vs 3 shards, the latency blip a
// health-checked failover injects when a primary is killed mid-run, and the
// (smaller) blip of a fenced failover when an asymmetric partition cuts a
// primary's replication link and it self-demotes mid-write (DESIGN.md §15).
// It writes a JSON report (BENCH_PR10.json) recording the perf trajectory
// ROADMAP asks for.
//
//	clusterbench -out BENCH_PR10.json
//	clusterbench -smoke            # tiny op counts; harness correctness only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"time"

	"smartflux/internal/fault"
	"smartflux/internal/kvstore/cluster"
	"smartflux/internal/kvstore/kvnet"
)

// listen binds a fresh loopback port for a fault-wrapped node listener.
func listen() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

// valueSize matches wirebench's put payload so shard counts are the only
// variable between the two reports.
const valueSize = 128

type result struct {
	Name      string  `json:"name"`
	Shards    int     `json:"shards"`
	Ops       int     `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Micros float64 `json:"p50_us"`
	P95Micros float64 `json:"p95_us"`
	P99Micros float64 `json:"p99_us"`
}

type failoverResult struct {
	Shards int `json:"shards"`
	Ops    int `json:"ops"`
	// KillAtOp is the op index after which the victim primary was cut off.
	KillAtOp  int     `json:"kill_at_op"`
	Failovers int     `json:"failovers"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// BlipP99Millis is the p99 op latency across the run including the
	// failover window — the promotion's cost folded into the tail.
	BlipP99Millis float64 `json:"blip_p99_ms"`
	// BlipMaxMillis is the single slowest op: the one that paid for the
	// probe sequence and promotion itself.
	BlipMaxMillis float64 `json:"blip_max_ms"`
	// LostWrites must be zero: every acked write survives the promotion.
	LostWrites int `json:"lost_writes"`
}

type partitionResult struct {
	Shards int `json:"shards"`
	Ops    int `json:"ops"`
	// CutAtOp is the op index after which the victim primary's replication
	// link was cut one-way (primary→replica); the primary self-demotes on
	// its next ship and the client promotes the replica without probing.
	CutAtOp         int     `json:"cut_at_op"`
	FencedFailovers int     `json:"fenced_failovers"`
	OpsPerSec       float64 `json:"ops_per_sec"`
	// BlipP99Millis is the p99 op latency including the fenced-failover
	// window. Unlike the probe-driven failover blip, no probe sequence runs:
	// the demotion rides back on the failed write itself.
	BlipP99Millis float64 `json:"blip_p99_ms"`
	BlipMaxMillis float64 `json:"blip_max_ms"`
	// LostWrites must be zero: the un-acked in-flight write is re-shipped to
	// the promoted replica, and every acked write survives.
	LostWrites int `json:"lost_writes"`
}

type report struct {
	GoVersion     string           `json:"go_version"`
	GOMAXPROCS    int              `json:"gomaxprocs"`
	NumCPU        int              `json:"num_cpu"`
	Note          string           `json:"note"`
	Benchmarks    []result         `json:"benchmarks"`
	Failover      *failoverResult  `json:"failover"`
	PartitionBlip *partitionResult `json:"partition_blip"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "clusterbench:", err)
		os.Exit(1)
	}
}

func run() error {
	smoke := flag.Bool("smoke", false, "tiny op counts: a correctness smoke for the bench harness, numbers meaningless")
	out := flag.String("out", "BENCH_PR10.json", "write the JSON report here")
	flag.Parse()

	ops := 20000
	if *smoke {
		ops = 400
	}

	rep := &report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Note: "replicated cluster puts (synchronous WAL-record shipping to followers); " +
			"failover run kills a primary mid-stream and folds the promotion blip into the tail; " +
			"partition-blip run cuts a primary's replication link one-way so it self-demotes " +
			"and the client fails over on the fencing rejection without probing",
	}
	for _, shards := range []int{1, 3} {
		res, err := benchPuts(shards, ops)
		if err != nil {
			return err
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
		fmt.Printf("%-20s %8.0f ops/sec   p50 %6.0fµs  p95 %6.0fµs  p99 %6.0fµs\n",
			res.Name, res.OpsPerSec, res.P50Micros, res.P95Micros, res.P99Micros)
	}
	fo, err := benchFailover(3, ops)
	if err != nil {
		return err
	}
	rep.Failover = fo
	fmt.Printf("%-20s %8.0f ops/sec   blip p99 %6.2fms  max %6.2fms  (%d failover, %d lost writes)\n",
		"failover-3shard", fo.OpsPerSec, fo.BlipP99Millis, fo.BlipMaxMillis, fo.Failovers, fo.LostWrites)
	pb, err := benchPartitionBlip(3, ops)
	if err != nil {
		return err
	}
	rep.PartitionBlip = pb
	fmt.Printf("%-20s %8.0f ops/sec   blip p99 %6.2fms  max %6.2fms  (%d fenced failover, %d lost writes)\n",
		"partition-3shard", pb.OpsPerSec, pb.BlipP99Millis, pb.BlipMaxMillis, pb.FencedFailovers, pb.LostWrites)

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// rig is a replicated in-process cluster plus its client.
type rig struct {
	primaries []*cluster.Node
	followers []*cluster.Node
	client    *cluster.Client
	inj       *fault.Injector
}

// startRig builds shards primary+follower pairs. When faulty, the primaries'
// listeners and the client's dials run through a fault injector so a shard
// can be killed with a partition.
func startRig(shards int, faulty bool) (*rig, error) {
	r := &rig{}
	if faulty {
		r.inj = fault.New(fault.Policy{})
	}
	addrs := make([]string, 0, shards)
	for s := 0; s < shards; s++ {
		cfg := cluster.NodeConfig{Label: fmt.Sprintf("shard%d", s)}
		if r.inj != nil {
			ln, err := listen()
			if err != nil {
				r.close()
				return nil, err
			}
			cfg.Listener = fault.WrapListener(ln, r.inj)
			// Ship through the injector with the node's own source identity,
			// so a one-way link cut severs this primary's replication path.
			cfg.Follower = kvnet.ClientConfig{Dial: fault.DialerFrom(r.inj, ln.Addr().String())}
		}
		n, err := cluster.NewNode(cfg)
		if err != nil {
			r.close()
			return nil, err
		}
		r.primaries = append(r.primaries, n)
		addrs = append(addrs, n.Addr())
	}
	m := cluster.NewMap(addrs)
	for s := 0; s < shards; s++ {
		f, err := cluster.NewNode(cluster.NodeConfig{Label: fmt.Sprintf("shard%d-replica", s)})
		if err != nil {
			r.close()
			return nil, err
		}
		r.followers = append(r.followers, f)
		if err := r.primaries[s].AttachFollower(f.Addr()); err != nil {
			r.close()
			return nil, err
		}
		if err := m.SetReplica(s, f.Addr()); err != nil {
			r.close()
			return nil, err
		}
	}
	ccfg := cluster.Config{Map: m, ProbeRetries: 1, ProbeBackoff: time.Millisecond}
	if r.inj != nil {
		ccfg.Client.Dial = fault.Dialer(r.inj)
	}
	c, err := cluster.New(ccfg)
	if err != nil {
		r.close()
		return nil, err
	}
	r.client = c
	return r, nil
}

func (r *rig) close() {
	if r.client != nil {
		_ = r.client.Close()
	}
	for _, n := range r.primaries {
		_ = n.Close()
	}
	for _, n := range r.followers {
		_ = n.Close()
	}
}

// benchPuts times ops sequential replicated puts against a healthy cluster.
func benchPuts(shards, ops int) (result, error) {
	r, err := startRig(shards, false)
	if err != nil {
		return result{}, err
	}
	defer r.close()
	if err := r.client.CreateTable("bench", 1); err != nil {
		return result{}, err
	}
	value := make([]byte, valueSize)
	lat := make([]time.Duration, ops)
	start := time.Now()
	for i := 0; i < ops; i++ {
		opStart := time.Now()
		if err := r.client.Put("bench", fmt.Sprintf("row-%07d", i), "v", value); err != nil {
			return result{}, err
		}
		lat[i] = time.Since(opStart)
	}
	elapsed := time.Since(start)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return result{
		Name:      fmt.Sprintf("put-%dshard", shards),
		Shards:    shards,
		Ops:       ops,
		OpsPerSec: float64(ops) / elapsed.Seconds(),
		P50Micros: float64(lat[ops/2]) / float64(time.Microsecond),
		P95Micros: float64(lat[ops*95/100]) / float64(time.Microsecond),
		P99Micros: float64(lat[ops*99/100]) / float64(time.Microsecond),
	}, nil
}

// benchFailover kills one primary halfway through the op stream and measures
// the promotion's latency blip plus post-failover data integrity.
func benchFailover(shards, ops int) (*failoverResult, error) {
	r, err := startRig(shards, true)
	if err != nil {
		return nil, err
	}
	defer r.close()
	if err := r.client.CreateTable("bench", 1); err != nil {
		return nil, err
	}
	value := make([]byte, valueSize)
	killAt := ops / 2
	failovers := 0
	lat := make([]time.Duration, ops)
	start := time.Now()
	for i := 0; i < ops; i++ {
		if i == killAt {
			r.inj.Partition(r.primaries[0].Addr())
		}
		opStart := time.Now()
		if err := r.client.Put("bench", fmt.Sprintf("row-%07d", i), "v", value); err != nil {
			return nil, fmt.Errorf("put %d (across failover): %w", i, err)
		}
		lat[i] = time.Since(opStart)
	}
	elapsed := time.Since(start)
	if r.client.Map().Shards[0].Primary == r.primaries[0].Addr() {
		// The victim never served a post-kill op (possible when the hash
		// sends no post-kill row its way) — force one so the report always
		// covers a promotion.
		if _, _, err := r.client.Get("bench", "row-0000000", "v"); err != nil {
			return nil, err
		}
	}
	m := r.client.Map()
	for s := range m.Shards {
		if m.Shards[s].Primary != r.primaries[s].Addr() {
			failovers++
		}
	}

	// Integrity: every acked write must be readable after the promotion.
	lost := 0
	checkEvery := ops / 200
	if checkEvery == 0 {
		checkEvery = 1
	}
	for i := 0; i < ops; i += checkEvery {
		_, found, err := r.client.Get("bench", fmt.Sprintf("row-%07d", i), "v")
		if err != nil {
			return nil, err
		}
		if !found {
			lost++
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return &failoverResult{
		Shards:        shards,
		Ops:           ops,
		KillAtOp:      killAt,
		Failovers:     failovers,
		OpsPerSec:     float64(ops) / elapsed.Seconds(),
		BlipP99Millis: float64(lat[ops*99/100]) / float64(time.Millisecond),
		BlipMaxMillis: float64(lat[ops-1]) / float64(time.Millisecond),
		LostWrites:    lost,
	}, nil
}

// benchPartitionBlip cuts one primary's replication link one-way (the
// asymmetric partition: clients still reach it, its follower does not hear
// from it) halfway through the op stream. The primary self-demotes when its
// next synchronous ship fails; the fencing rejection rides back on the write
// itself, so the client promotes the replica without any probe sequence and
// re-acks the in-flight write there. The cell reports that fenced-failover
// blip next to the probe-driven one.
func benchPartitionBlip(shards, ops int) (*partitionResult, error) {
	r, err := startRig(shards, true)
	if err != nil {
		return nil, err
	}
	defer r.close()
	if err := r.client.CreateTable("bench", 1); err != nil {
		return nil, err
	}
	value := make([]byte, valueSize)
	cutAt := ops / 2
	victim := r.primaries[0].Addr()
	lat := make([]time.Duration, ops)
	start := time.Now()
	for i := 0; i < ops; i++ {
		if i == cutAt {
			r.inj.PartitionLink(victim, r.followers[0].Addr())
		}
		opStart := time.Now()
		if err := r.client.Put("bench", fmt.Sprintf("row-%07d", i), "v", value); err != nil {
			return nil, fmt.Errorf("put %d (across link cut): %w", i, err)
		}
		lat[i] = time.Since(opStart)
	}
	elapsed := time.Since(start)
	// If no post-cut op happened to route to the victim shard, force writes
	// (outside the timed window) until one trips the fenced failover, so the
	// report always covers a promotion.
	for extra := 0; extra < 1000 && r.client.Map().Shards[0].Primary == victim; extra++ {
		if err := r.client.Put("bench", fmt.Sprintf("extra-%07d", extra), "v", value); err != nil {
			return nil, fmt.Errorf("forced put across link cut: %w", err)
		}
	}
	fenced := 0
	m := r.client.Map()
	for s := range m.Shards {
		if m.Shards[s].Primary != r.primaries[s].Addr() {
			fenced++
		}
	}
	if fenced == 0 {
		return nil, fmt.Errorf("link cut never tripped a fenced failover")
	}

	// Integrity: every acked write must be readable after the promotion —
	// including the one whose ship died mid-flight.
	lost := 0
	checkEvery := ops / 200
	if checkEvery == 0 {
		checkEvery = 1
	}
	for i := 0; i < ops; i += checkEvery {
		_, found, err := r.client.Get("bench", fmt.Sprintf("row-%07d", i), "v")
		if err != nil {
			return nil, err
		}
		if !found {
			lost++
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return &partitionResult{
		Shards:          shards,
		Ops:             ops,
		CutAtOp:         cutAt,
		FencedFailovers: fenced,
		OpsPerSec:       float64(ops) / elapsed.Seconds(),
		BlipP99Millis:   float64(lat[ops*99/100]) / float64(time.Millisecond),
		BlipMaxMillis:   float64(lat[ops-1]) / float64(time.Millisecond),
		LostWrites:      lost,
	}, nil
}
