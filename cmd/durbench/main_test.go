package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark smoke test")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-out", out, "-iters", "3", "-sensors", "5"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2 (fsync commit + never)", len(rep.Benchmarks))
	}
	for _, b := range rep.Benchmarks {
		if b.WalOffNsOp <= 0 || b.WalOnNsOp <= 0 {
			t.Errorf("%s: non-positive timings: off=%d on=%d", b.Name, b.WalOffNsOp, b.WalOnNsOp)
		}
	}
	if rep.Benchmarks[0].Fsync != "commit" || rep.Benchmarks[1].Fsync != "never" {
		t.Errorf("unexpected fsync order: %+v", rep.Benchmarks)
	}
}
