// Command durbench measures the cost of crash durability: harness wave
// throughput with the write-ahead log off versus on (per-commit fsync and
// no-fsync policies), recorded as JSON (default BENCH_PR5.json):
//
//	durbench                  # write BENCH_PR5.json in the working dir
//	durbench -out - -iters 50 # print JSON to stdout, 50 waves per variant
//
// One benchmark op is one full harness wave — reference + live execution,
// measurement, checkpoint construction and (WAL-on) the commit record with
// its flush policy, including periodic snapshot rotations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"

	"smartflux"
	"smartflux/internal/durable"
	"smartflux/internal/engine"
)

// report is the BENCH_PR5.json schema.
type report struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	GoVersion  string  `json:"go_version"`
	Note       string  `json:"note"`
	Benchmarks []entry `json:"benchmarks"`
}

// entry compares one flush policy's durable wave cost with the shared
// WAL-off baseline.
type entry struct {
	Name        string  `json:"name"`
	Fsync       string  `json:"fsync"`
	WalOffNsOp  int64   `json:"wal_off_ns_op"`
	WalOnNsOp   int64   `json:"wal_on_ns_op"`
	OverheadPct float64 `json:"overhead_pct"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "durbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("durbench", flag.ContinueOnError)
	out := fs.String("out", "BENCH_PR5.json", "output file (- = stdout)")
	iters := fs.Int("iters", 200, "waves per variant")
	sensors := fs.Int("sensors", 20, "writes per wave in the benchmark workload")
	obsAddr := fs.String("obs-addr", "", "serve /metrics, /trace/tail, /trace/spans and /debug/pprof on this address while benchmarks run")
	traceOut := fs.String("trace-out", "", "append decision-trace events as JSON lines to this file (adds sink cost to the measured waves)")
	spanOut := fs.String("span-out", "", "append causal spans (plus decision events) as JSON lines to this file, readable by sftrace (adds sink cost to the measured waves)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	observer, obsClose, err := buildObserver(*obsAddr, *traceOut, *spanOut)
	if err != nil {
		return err
	}
	defer obsClose()
	testing.Init()
	if err := flag.Set("test.benchtime", fmt.Sprintf("%dx", *iters)); err != nil {
		return err
	}

	rep := report{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Note: "one op = one harness wave (ref + live + measurement); WAL-on adds " +
			"mutation logging, the per-wave commit checkpoint and periodic snapshots",
	}

	baseline, err := benchWaves(*sensors, false, durable.FsyncNever, observer)
	if err != nil {
		return err
	}
	for _, mode := range []durable.FsyncMode{durable.FsyncCommit, durable.FsyncNever} {
		on, err := benchWaves(*sensors, true, mode, observer)
		if err != nil {
			return err
		}
		rep.Benchmarks = append(rep.Benchmarks, entry{
			Name:        "HarnessWave/wal-" + mode.String(),
			Fsync:       mode.String(),
			WalOffNsOp:  baseline,
			WalOnNsOp:   on,
			OverheadPct: overhead(baseline, on),
		})
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

// buildObserver wires the -obs-addr/-trace-out/-span-out flags into one
// observer shared by every benchmark variant. All three empty yields nil
// (uninstrumented waves, the default measurement). When a sink is attached
// its cost is part of what the benchmark measures — that is the point: the
// span JSONL feeds sftrace's per-layer WAL breakdown.
func buildObserver(obsAddr, traceOut, spanOut string) (*smartflux.RunObserver, func(), error) {
	if obsAddr == "" && traceOut == "" && spanOut == "" {
		return nil, func() {}, nil
	}
	registry := smartflux.NewMetricsRegistry()
	var (
		sinks     []smartflux.TraceSink
		spanSinks []smartflux.SpanSink
		closers   []func()
	)
	closeAll := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return nil, closeAll, fmt.Errorf("trace-out: %w", err)
		}
		closers = append(closers, func() { _ = f.Close() })
		sinks = append(sinks, smartflux.NewJSONLTraceSink(f))
	}
	if spanOut != "" {
		f, err := os.Create(spanOut)
		if err != nil {
			return nil, closeAll, fmt.Errorf("span-out: %w", err)
		}
		closers = append(closers, func() { _ = f.Close() })
		spanl := smartflux.NewJSONLTraceSink(f)
		sinks = append(sinks, spanl)
		spanSinks = append(spanSinks, spanl)
	}
	if obsAddr != "" {
		ring := smartflux.NewTraceRing(4096)
		sinks = append(sinks, ring)
		spanRing := smartflux.NewSpanRing(4096)
		spanSinks = append(spanSinks, spanRing)
		srv, err := smartflux.StartDebugServer(obsAddr, registry, ring, spanRing)
		if err != nil {
			return nil, closeAll, fmt.Errorf("obs-addr: %w", err)
		}
		closers = append(closers, func() { _ = srv.Close() })
		fmt.Fprintf(os.Stderr, "durbench: observability on http://%s\n", srv.Addr())
	}
	return smartflux.NewRunObserver(registry, sinks...).WithSpanSinks(spanSinks...), closeAll, nil
}

// overhead is the WAL-on cost relative to the WAL-off baseline, in percent.
func overhead(off, on int64) float64 {
	if off <= 0 {
		return 0
	}
	return 100 * (float64(on) - float64(off)) / float64(off)
}

// walCommitter commits every completed wave with an empty payload — the
// durable pipeline's per-wave path minus the (workload-specific) session
// checkpoint encoding.
type walCommitter struct {
	mgr *durable.Manager
}

func (c *walCommitter) CommitWave(hcp *engine.HarnessCheckpoint) error {
	return c.mgr.Commit(hcp.Waves, nil)
}

// benchWaves times one harness wave with durability off or on under the
// given flush policy; observer (may be nil) instruments the harness and WAL.
func benchWaves(sensors int, durableOn bool, mode durable.FsyncMode, observer *smartflux.RunObserver) (int64, error) {
	cfg := engine.HarnessConfig{}
	var mgr *durable.Manager
	if durableOn {
		dir, err := os.MkdirTemp("", "durbench-*")
		if err != nil {
			return 0, err
		}
		defer func() { _ = os.RemoveAll(dir) }()
		mgr, err = durable.Open(durable.Options{Dir: dir, Fsync: mode, Obs: observer})
		if err != nil {
			return 0, err
		}
		cfg.Committer = &walCommitter{mgr: mgr}
	}
	harness, err := engine.NewHarnessWithConfig(benchWorkload(sensors), nil, cfg)
	if err != nil {
		return 0, err
	}
	if observer != nil {
		harness.Instrument(observer)
	}
	if durableOn {
		if err := mgr.Register("live", harness.Live().Store()); err != nil {
			return 0, err
		}
		if err := mgr.Register("ref", harness.Ref().Store()); err != nil {
			return 0, err
		}
		if err := mgr.Begin(0, nil); err != nil {
			return 0, err
		}
		defer func() { _ = mgr.Close() }()
	}
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		if _, err := harness.Run(b.N, engine.Sync{}); err != nil {
			benchErr = err
			b.FailNow()
		}
	})
	return res.NsPerOp(), benchErr
}

// benchWorkload is the quickstart shape: a source writing `sensors` floats
// and a gated aggregate over them.
func benchWorkload(sensors int) smartflux.BuildFunc {
	return func() (*smartflux.Workflow, *smartflux.Store, error) {
		store := smartflux.NewStore()
		wf := smartflux.NewWorkflow("durbench")
		src := &smartflux.Step{
			ID:      "src",
			Source:  true,
			Outputs: []smartflux.Container{{Table: "raw"}},
			Proc: smartflux.ProcessorFunc(func(ctx *smartflux.Context) error {
				t, err := ctx.Table("raw")
				if err != nil {
					return err
				}
				batch := smartflux.NewBatch()
				for i := 0; i < sensors; i++ {
					batch.PutFloat("s"+strconv.Itoa(i), "v", float64(ctx.Wave%97)+float64(i)/7)
				}
				return t.Apply(batch)
			}),
		}
		agg := &smartflux.Step{
			ID:      "agg",
			Inputs:  []smartflux.Container{{Table: "raw"}},
			Outputs: []smartflux.Container{{Table: "out"}},
			QoD:     smartflux.QoD{MaxError: 0.05, Mode: smartflux.ModeAccumulate},
			Proc: smartflux.ProcessorFunc(func(ctx *smartflux.Context) error {
				raw, err := ctx.Table("raw")
				if err != nil {
					return err
				}
				var sum float64
				var n int
				for _, c := range raw.Scan(smartflux.ScanOptions{}) {
					if v, ok := c.FloatValue(); ok {
						sum += v
						n++
					}
				}
				if n == 0 {
					return nil
				}
				out, err := ctx.Table("out")
				if err != nil {
					return err
				}
				return out.PutFloat("all", "mean", sum/float64(n))
			}),
		}
		for _, s := range []*smartflux.Step{src, agg} {
			if err := wf.AddStep(s); err != nil {
				return nil, nil, err
			}
		}
		if err := wf.Finalize(); err != nil {
			return nil, nil, err
		}
		return wf, store, nil
	}
}
