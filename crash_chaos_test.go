package smartflux_test

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"testing"
	"time"

	"smartflux"
	"smartflux/internal/durable"
	"smartflux/internal/fault"
	"smartflux/internal/kvstore/kvnet"
)

// The crash-chaos suite is the headline durability assertion (DESIGN.md
// §11): a durable pipeline killed at a seeded crash point — mid-WAL, on a
// wave boundary, during a snapshot rotation, or through a torn final write —
// and then resumed, produces bit-identical store contents (values, versions,
// logical timestamps) and bit-identical ε/ι/decision series to a run that
// never crashed. Run via `make chaos-crash` (the TestCrashChaos prefix is
// the filter).

const (
	crashSensors    = 10
	crashTrainWaves = 60
	crashApplyWaves = 40
)

type crashRig struct {
	stores []*smartflux.Store
}

// crashBuild is the quickstart pipeline (ingest → aggregate → alert) on a
// plain store; crash injection happens at the WAL layer via the durability
// hook, not inside processors.
func crashBuild(rig *crashRig) smartflux.BuildFunc {
	return func() (*smartflux.Workflow, *smartflux.Store, error) {
		store := smartflux.NewStore()
		rig.stores = append(rig.stores, store)
		wf := smartflux.NewWorkflow("crash-chaos")
		steps := []*smartflux.Step{
			{
				ID:      "ingest",
				Source:  true,
				Outputs: []smartflux.Container{{Table: "raw"}},
				Proc: smartflux.ProcessorFunc(func(ctx *smartflux.Context) error {
					t, err := ctx.Table("raw")
					if err != nil {
						return err
					}
					for i := 0; i < crashSensors; i++ {
						v := 20 + 4*math.Sin(2*math.Pi*float64(ctx.Wave)/48)
						if ctx.Wave%70 > 55 {
							v += 8
						}
						v += 0.4 * math.Sin(1.7*float64(ctx.Wave)+0.9*float64(i))
						if err := t.PutFloat("s"+strconv.Itoa(i), "temp", v); err != nil {
							return err
						}
					}
					return nil
				}),
			},
			{
				ID:      "aggregate",
				Inputs:  []smartflux.Container{{Table: "raw"}},
				Outputs: []smartflux.Container{{Table: "avg"}},
				QoD:     smartflux.QoD{MaxError: 0.1, Mode: smartflux.ModeAccumulate},
				Proc: smartflux.ProcessorFunc(func(ctx *smartflux.Context) error {
					raw, err := ctx.Table("raw")
					if err != nil {
						return err
					}
					var sum float64
					var n int
					for _, c := range raw.Scan(smartflux.ScanOptions{}) {
						if v, ok := c.FloatValue(); ok {
							sum += v
							n++
						}
					}
					if n == 0 {
						return nil
					}
					out, err := ctx.Table("avg")
					if err != nil {
						return err
					}
					return out.PutFloat("region", "avg", sum/float64(n))
				}),
			},
			{
				ID:      "alert",
				Inputs:  []smartflux.Container{{Table: "avg"}},
				Outputs: []smartflux.Container{{Table: "alert"}},
				QoD:     smartflux.QoD{MaxError: 0.1, Mode: smartflux.ModeAccumulate},
				Proc: smartflux.ProcessorFunc(func(ctx *smartflux.Context) error {
					avg, err := ctx.Table("avg")
					if err != nil {
						return err
					}
					v, _ := avg.GetFloat("region", "avg")
					out, err := ctx.Table("alert")
					if err != nil {
						return err
					}
					return out.PutFloat("region", "level", 5+2*(v-15))
				}),
			},
		}
		for _, s := range steps {
			if err := wf.AddStep(s); err != nil {
				return nil, nil, err
			}
		}
		if err := wf.Finalize(); err != nil {
			return nil, nil, err
		}
		return wf, store, nil
	}
}

func crashPipelineConfig() smartflux.PipelineConfig {
	return smartflux.PipelineConfig{
		TrainWaves: crashTrainWaves,
		ApplyWaves: crashApplyWaves,
		Session: smartflux.SessionConfig{
			Seed:           7,
			Thresholds:     []float64{0.15},
			PositiveWeight: 12,
		},
	}
}

// crashOutcome is everything the bit-identical-recovery contract covers.
type crashOutcome struct {
	dumps     []string    // live + ref store contents, versions and timestamps
	measured  []float64   // ε series of the gated output step
	predicted []float64   // accounted ε series
	impacts   [][]float64 // ι series (application phase)
	decisions [][]bool    // live triggering decisions (application phase)
}

func crashOutcomeOf(t *testing.T, rig *crashRig, res *smartflux.PipelineResult) crashOutcome {
	t.Helper()
	if len(rig.stores) < 2 {
		t.Fatalf("rig captured %d stores, want the run's live + ref pair", len(rig.stores))
	}
	out := crashOutcome{}
	for _, s := range rig.stores[len(rig.stores)-2:] {
		out.dumps = append(out.dumps, dumpStore(t, s, "raw", "avg", "alert"))
	}
	report := res.Apply.Reports["alert"]
	if report == nil {
		t.Fatal("no report for step alert")
	}
	out.measured = report.Measured
	out.predicted = report.Predicted
	out.impacts = res.Apply.RefImpacts
	out.decisions = res.Apply.LiveExecuted
	return out
}

func equalCrashOutcome(t *testing.T, clean, got crashOutcome) {
	t.Helper()
	for i := range clean.dumps {
		if clean.dumps[i] != got.dumps[i] {
			t.Errorf("store %d diverged:\nclean:\n%s\nresumed:\n%s", i, clean.dumps[i], got.dumps[i])
		}
	}
	if !equalFloats(clean.measured, got.measured) {
		t.Errorf("measured ε diverged:\nclean:   %v\nresumed: %v", clean.measured, got.measured)
	}
	if !equalFloats(clean.predicted, got.predicted) {
		t.Errorf("predicted ε diverged:\nclean:   %v\nresumed: %v", clean.predicted, got.predicted)
	}
	if len(clean.impacts) != len(got.impacts) {
		t.Fatalf("ι history length diverged: %d vs %d", len(clean.impacts), len(got.impacts))
	}
	for w := range clean.impacts {
		if !equalFloats(clean.impacts[w], got.impacts[w]) {
			t.Errorf("ι diverged at wave %d: %v vs %v", w, clean.impacts[w], got.impacts[w])
		}
	}
	if len(clean.decisions) != len(got.decisions) {
		t.Fatalf("decision history length diverged: %d vs %d", len(clean.decisions), len(got.decisions))
	}
	for w := range clean.decisions {
		for i := range clean.decisions[w] {
			if clean.decisions[w][i] != got.decisions[w][i] {
				t.Errorf("decision diverged at wave %d step %d: %v vs %v",
					w, i, clean.decisions[w][i], got.decisions[w][i])
			}
		}
	}
}

// probeBoundary crashes a throwaway run at approximately approxN WAL appends
// and derives, from the records the recovery had to discard, the append
// index whose crash lands exactly on the preceding wave boundary: the WAL's
// final record is then that wave's commit and recovery discards nothing.
func probeBoundary(t *testing.T, cfg smartflux.PipelineConfig, approxN int) (boundaryN, wave int) {
	t.Helper()
	dir := t.TempDir()
	inj := fault.New(fault.Policy{CrashPoints: map[string]int{"wal_append": approxN}})
	_, _, err := smartflux.RunPipelineDurable(crashBuild(&crashRig{}), []smartflux.StepID{"alert"}, cfg,
		smartflux.DurableOptions{Dir: dir, Hook: inj.OpHook()})
	if !errors.Is(err, fault.ErrCrashed) {
		t.Fatalf("boundary probe at append %d never crashed: %v", approxN, err)
	}
	rec, err := durable.Recover(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil {
		t.Fatalf("boundary probe at append %d left no durable state", approxN)
	}
	return approxN - rec.Stats.Discarded, rec.Wave
}

// TestCrashChaosBitIdenticalRecovery kills the durable pipeline at 22 seeded
// crash points — mid-WAL appends across both phases, exact wave boundaries,
// snapshot rotations, torn final writes — and asserts every resumed run is
// bit-identical to the uncrashed baseline.
func TestCrashChaosBitIdenticalRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-chaos suite skipped in -short mode")
	}
	cfg := crashPipelineConfig()

	cleanRig := &crashRig{}
	cleanRes, err := smartflux.RunPipeline(crashBuild(cleanRig), []smartflux.StepID{"alert"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clean := crashOutcomeOf(t, cleanRig, cleanRes)

	// The durable layer itself must not perturb the run.
	durRig := &crashRig{}
	durRes, info, err := smartflux.RunPipelineDurable(crashBuild(durRig), []smartflux.StepID{"alert"}, cfg, smartflux.DurableOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	equalCrashOutcome(t, clean, crashOutcomeOf(t, durRig, durRes))
	if info.Durable.Commits != crashTrainWaves+crashApplyWaves {
		t.Fatalf("clean durable run committed %d waves, want %d", info.Durable.Commits, crashTrainWaves+crashApplyWaves)
	}

	type point struct {
		name      string
		appendN   int  // crash at the Nth WAL append (0 = none)
		boundary  bool // refine appendN to the preceding wave boundary first
		torn      int  // partial bytes of the crashing append
		snapshotN int  // crash at the Nth snapshot rotation (0 = none)
		snapEvery int  // snapshot cadence override for this point
	}
	points := []point{
		// Mid-WAL appends: training phase, the training/application switch,
		// deep into the application phase.
		{name: "midwal-10", appendN: 10},
		{name: "midwal-100", appendN: 100},
		{name: "midwal-333", appendN: 333},
		{name: "midwal-707", appendN: 707},
		{name: "midwal-1111", appendN: 1111},
		{name: "midwal-1313", appendN: 1313},
		{name: "midwal-1600", appendN: 1600},
		{name: "midwal-1800", appendN: 1800},
		{name: "midwal-2000", appendN: 2000},
		{name: "midwal-2300", appendN: 2300},
		// Exact wave boundaries (probed, then hit precisely): the WAL ends on
		// a commit record and recovery discards nothing.
		{name: "boundary-early", appendN: 40, boundary: true},
		{name: "boundary-mid-train", appendN: 520, boundary: true},
		{name: "boundary-late-train", appendN: 1020, boundary: true},
		{name: "boundary-train-end", appendN: 1500, boundary: true},
		{name: "boundary-apply", appendN: 1900, boundary: true},
		// Snapshot rotations (snapshot #1 is the Begin snapshot).
		{name: "snapshot-2nd", snapshotN: 2, snapEvery: 16},
		{name: "snapshot-3rd", snapshotN: 3, snapEvery: 16},
		{name: "snapshot-in-apply", snapshotN: 5, snapEvery: 16},
		{name: "snapshot-4th-dense", snapshotN: 4, snapEvery: 8},
		// Torn final records: the crashing append leaves partial bytes that
		// recovery must truncate.
		{name: "torn-1b", appendN: 600, torn: 1},
		{name: "torn-3b", appendN: 200, torn: 3},
		{name: "torn-9b-apply", appendN: 1750, torn: 9},
	}
	if len(points) < 20 {
		t.Fatalf("crash matrix has %d points, the contract demands at least 20", len(points))
	}

	for _, p := range points {
		p := p
		t.Run(p.name, func(t *testing.T) {
			t.Parallel()
			wantWave := -1
			if p.boundary {
				p.appendN, wantWave = probeBoundary(t, cfg, p.appendN)
			}
			dir := t.TempDir()
			policy := fault.Policy{CrashPoints: map[string]int{}, CrashTornBytes: p.torn}
			if p.appendN > 0 {
				policy.CrashPoints["wal_append"] = p.appendN
			}
			if p.snapshotN > 0 {
				policy.CrashPoints["snapshot"] = p.snapshotN
			}
			inj := fault.New(policy)
			opts := smartflux.DurableOptions{Dir: dir, Hook: inj.OpHook(), SnapshotEvery: p.snapEvery}
			crashRigA := &crashRig{}
			_, _, err := smartflux.RunPipelineDurable(crashBuild(crashRigA), []smartflux.StepID{"alert"}, cfg, opts)
			if !errors.Is(err, fault.ErrCrashed) {
				t.Fatalf("crash point %s never fired: %v", p.name, err)
			}

			resumeRig := &crashRig{}
			res, info, err := smartflux.ResumePipeline(crashBuild(resumeRig), []smartflux.StepID{"alert"}, cfg,
				smartflux.DurableOptions{Dir: dir, SnapshotEvery: p.snapEvery})
			if err != nil {
				t.Fatalf("resume after %s: %v", p.name, err)
			}
			if !info.Resumed {
				t.Error("resume did not report recovered state")
			}
			if wantWave >= 0 {
				if info.Recovery.Wave != wantWave {
					t.Errorf("recovered wave %d, want exactly %d", info.Recovery.Wave, wantWave)
				}
				if info.Recovery.Discarded != 0 {
					t.Errorf("boundary crash discarded %d records, want 0", info.Recovery.Discarded)
				}
			}
			if p.torn > 0 && !info.Recovery.Torn {
				t.Error("torn-write crash did not leave a torn WAL tail")
			}
			equalCrashOutcome(t, clean, crashOutcomeOf(t, resumeRig, res))
			t.Logf("crashed at wave %d (%d records replayed, %d discarded, %d bytes truncated); resume bit-identical",
				info.Recovery.Wave, info.Recovery.Replayed, info.Recovery.Discarded, info.Recovery.TruncatedBytes)
		})
	}
}

// TestCrashChaosDoubleCrash crashes the run, crashes the resumed run, and
// resumes again: durability must compose across repeated failures.
func TestCrashChaosDoubleCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-chaos suite skipped in -short mode")
	}
	cfg := crashPipelineConfig()
	cleanRig := &crashRig{}
	cleanRes, err := smartflux.RunPipeline(crashBuild(cleanRig), []smartflux.StepID{"alert"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clean := crashOutcomeOf(t, cleanRig, cleanRes)

	dir := t.TempDir()
	inj := fault.New(fault.Policy{CrashPoints: map[string]int{"wal_append": 400}})
	_, _, err = smartflux.RunPipelineDurable(crashBuild(&crashRig{}), []smartflux.StepID{"alert"}, cfg,
		smartflux.DurableOptions{Dir: dir, Hook: inj.OpHook()})
	if !errors.Is(err, fault.ErrCrashed) {
		t.Fatalf("first crash: %v", err)
	}
	inj2 := fault.New(fault.Policy{CrashPoints: map[string]int{"wal_append": 900}, CrashTornBytes: 4})
	_, _, err = smartflux.ResumePipeline(crashBuild(&crashRig{}), []smartflux.StepID{"alert"}, cfg,
		smartflux.DurableOptions{Dir: dir, Hook: inj2.OpHook()})
	if !errors.Is(err, fault.ErrCrashed) {
		t.Fatalf("second crash: %v", err)
	}
	rig := &crashRig{}
	res, info, err := smartflux.ResumePipeline(crashBuild(rig), []smartflux.StepID{"alert"}, cfg,
		smartflux.DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Resumed {
		t.Error("final resume did not report recovered state")
	}
	equalCrashOutcome(t, clean, crashOutcomeOf(t, rig, res))
}

// TestCrashChaosKvnetDedupReplay drives a durability-managed store through a
// kvnet client over a disconnect-prone transport: the server's ClientID+Seq
// dedup must keep retried mutations out of the WAL (each applied once), and
// recovery replay must be idempotent — applying it into a fresh store, into
// that store again, and over the live server store that already holds every
// write all converge to bit-identical contents.
func TestCrashChaosKvnetDedupReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-chaos suite skipped in -short mode")
	}
	dir := t.TempDir()
	serverStore := smartflux.NewStore()
	mgr, err := durable.Open(durable.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Register("srv", serverStore); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Begin(0, []byte("kv-0")); err != nil {
		t.Fatal(err)
	}

	server := kvnet.NewServer(serverStore)
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = server.Close() }()
	inj := fault.New(fault.Policy{Seed: 17, DisconnectRate: 0.15})
	client, err := kvnet.DialConfig(addr, kvnet.ClientConfig{
		DialTimeout:  2 * time.Second,
		ReadTimeout:  2 * time.Second,
		WriteTimeout: 2 * time.Second,
		MaxRetries:   12,
		RetryBackoff: time.Millisecond,
		RetrySeed:    3,
		Dial:         fault.Dialer(inj),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	if err := client.CreateTable("chaos", 0); err != nil {
		t.Fatal(err)
	}
	for wave := 1; wave <= 3; wave++ {
		for i := 0; i < 20; i++ {
			if err := client.PutFloat("chaos", "s"+strconv.Itoa(i), "v", float64(wave*100+i)); err != nil {
				t.Fatalf("wave %d put %d: %v", wave, i, err)
			}
		}
		for i := 0; i < 3; i++ {
			if err := client.Delete("chaos", "s"+strconv.Itoa(i), "v"); err != nil {
				t.Fatalf("wave %d delete %d: %v", wave, i, err)
			}
		}
		if err := mgr.Commit(wave, []byte(fmt.Sprintf("kv-%d", wave))); err != nil {
			t.Fatalf("commit wave %d: %v", wave, err)
		}
	}
	if inj.Stats().Disconnects == 0 {
		t.Fatal("no disconnects injected; the dedup path was never exercised")
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	want := dumpStore(t, serverStore, "chaos")
	rec, err := durable.Recover(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || rec.Wave != 3 {
		t.Fatalf("recovery = %+v, want wave 3", rec)
	}
	fresh := smartflux.NewStore()
	if err := rec.Apply("srv", fresh); err != nil {
		t.Fatal(err)
	}
	if got := dumpStore(t, fresh, "chaos"); got != want {
		t.Errorf("recovered store diverged from the deduped server store:\nserver:\n%s\nrecovered:\n%s", want, got)
	}
	// Idempotence: replaying again — into the rebuilt store and over the live
	// server store itself — must change nothing.
	if err := rec.Apply("srv", fresh); err != nil {
		t.Fatal(err)
	}
	if got := dumpStore(t, fresh, "chaos"); got != want {
		t.Errorf("double replay diverged:\n%s\nvs\n%s", got, want)
	}
	if err := rec.Apply("srv", serverStore); err != nil {
		t.Fatal(err)
	}
	if got := dumpStore(t, serverStore, "chaos"); got != want {
		t.Errorf("replay over the live server store diverged:\n%s\nvs\n%s", got, want)
	}
}
