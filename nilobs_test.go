package smartflux_test

import (
	"testing"

	"smartflux"
	"smartflux/workloads"
)

// TestNilObserverPipeline is the regression guard for the nil-safety
// invariant every instrumentation hook since PR 1 promises: the full
// quickstart-sized pipeline — engine waves (sequential and parallel), store
// ops, session training, drift detection — must run with no observer at all,
// and with a metrics-only observer (no span sinks, so Spanning() is false),
// without panicking or emitting anything. `make race` runs this under the
// race detector, which also catches unsynchronized span state on the
// parallel wave scheduler's goroutines.
func TestNilObserverPipeline(t *testing.T) {
	metricsOnly := smartflux.NewRunObserver(smartflux.NewMetricsRegistry())
	cases := []struct {
		name        string
		obs         *smartflux.RunObserver
		parallelism int
	}{
		{"nil-observer-sequential", nil, 0},
		{"nil-observer-parallel", nil, 4},
		{"metrics-only-no-spans", metricsOnly, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			build := workloads.AirQuality(workloads.AirQualityConfig{Seed: 42})
			res, err := smartflux.RunPipeline(build, nil, smartflux.PipelineConfig{
				TrainWaves:  40,
				ApplyWaves:  20,
				Session:     smartflux.SessionConfig{Seed: 1},
				Obs:         tc.obs,
				Parallelism: tc.parallelism,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Apply == nil || res.Apply.Waves != 20 {
				t.Fatalf("apply phase incomplete: %+v", res.Apply)
			}
		})
	}
	if metricsOnly.Spanning() {
		t.Error("observer without span sinks reports Spanning() = true")
	}
}
