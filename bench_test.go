package smartflux_test

// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5), one per experiment, plus the §5.3 overhead microbenchmarks. The
// figure benchmarks run the full experiment pipeline at a reduced scale
// (Scale 0.12) so `go test -bench=.` completes in minutes; run
// cmd/experiments with -scale 1 for paper-length reproductions.

import (
	"io"
	"math/rand"
	"strconv"
	"testing"

	"smartflux"
	"smartflux/internal/core"
	"smartflux/internal/engine"
	"smartflux/internal/experiments"
	"smartflux/internal/kvstore"
	"smartflux/internal/metric"
	"smartflux/internal/ml"
	"smartflux/internal/obs"
	"smartflux/internal/ml/multilabel"
	"smartflux/workloads"
)

// benchRunner shares pipeline runs across figure benchmarks within one
// bench binary invocation.
var benchRunner = experiments.NewRunner(experiments.Config{Seed: 42, Scale: 0.12})

// BenchmarkFig03FireRiskGenerators regenerates Figure 3 (diurnal sensor
// series of the motivational fire-risk scenario).
func BenchmarkFig03FireRiskGenerators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig3(experiments.Config{Seed: 42})
		if len(res.Hours) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkClassifierSelection regenerates the §3.2 classifier-comparison
// table (ROC areas of the six algorithms).
func BenchmarkClassifierSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ClassifierSelection(benchRunner, 0.20)
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
	}
}

// BenchmarkFig07Correlation regenerates the Figure 7 correlation panels.
func BenchmarkFig07Correlation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(benchRunner, 0.20)
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
	}
}

// BenchmarkFig08LearningCurves regenerates the Figure 8 learning curves.
func BenchmarkFig08LearningCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
	}
}

// BenchmarkFig09PredictionError regenerates the Figure 9 measured/predicted
// error series.
func BenchmarkFig09PredictionError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
	}
}

// BenchmarkFig10Confidence regenerates the Figure 10 confidence curves.
func BenchmarkFig10Confidence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
	}
}

// BenchmarkFig11PolicyComparison regenerates the Figure 11 policy
// comparison (SmartFlux vs random/seq2/seq3/seq5).
func BenchmarkFig11PolicyComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
	}
}

// BenchmarkFig12ResourceSavings regenerates the Figure 12 execution/savings
// tables.
func BenchmarkFig12ResourceSavings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
	}
}

// --- §5.3 overhead microbenchmarks -------------------------------------

// BenchmarkOverheadImpactComputation measures one input-impact evaluation
// over a 1000-element container state (the per-wave Monitoring cost).
func BenchmarkOverheadImpactComputation(b *testing.B) {
	state := make(metric.State, 1000)
	baseline := make(metric.State, 1000)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		key := "r" + strconv.Itoa(i) + "/v"
		baseline[key] = rng.Float64() * 100
		state[key] = baseline[key] + rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := metric.Evaluate(metric.NewRelativeError, state, baseline); v < 0 {
			b.Fatal("negative metric")
		}
	}
}

// BenchmarkOverheadModelBuild measures predictor construction (the paper
// reports < 1 s; this is the dominant overhead source).
func BenchmarkOverheadModelBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var data multilabel.Dataset
	for i := 0; i < 300; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10}
		y := []int{0, 0}
		if x[0] > 5 {
			y[0] = 1
		}
		if x[1] > 5 {
			y[1] = 1
		}
		data.Append(x, y)
	}
	factory := func() ml.Classifier { return ml.NewForest(ml.ForestConfig{Seed: 1}) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewPredictor(factory, data, nil, core.FeatureOwnImpact); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverheadPrediction measures one per-wave classifier query.
func BenchmarkOverheadPrediction(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	var data multilabel.Dataset
	for i := 0; i < 300; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10}
		y := []int{boolToInt(x[0] > 5), boolToInt(x[1] > 5)}
		data.Append(x, y)
	}
	factory := func() ml.Classifier { return ml.NewForest(ml.ForestConfig{Seed: 1}) }
	predictor, err := core.NewPredictor(factory, data, nil, core.FeatureOwnImpact)
	if err != nil {
		b.Fatal(err)
	}
	impacts := []float64{4.2, 6.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := predictor.Scores(impacts); err != nil {
			b.Fatal(err)
		}
	}
}

func boolToInt(v bool) int {
	if v {
		return 1
	}
	return 0
}

// BenchmarkOverheadKVStorePut measures raw store write throughput.
func BenchmarkOverheadKVStorePut(b *testing.B) {
	store := kvstore.New()
	table, err := store.CreateTable("t", kvstore.TableOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := table.PutFloat("r"+strconv.Itoa(i%1000), "c", float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverheadKVStoreScan measures a full container snapshot (the
// read path of every impact computation).
func BenchmarkOverheadKVStoreScan(b *testing.B) {
	store := kvstore.New()
	table, err := store.CreateTable("t", kvstore.TableOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := table.PutFloat("r"+strconv.Itoa(i), "c", float64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := table.ScanFloats(kvstore.ScanOptions{}); len(got) != 1000 {
			b.Fatal("short scan")
		}
	}
}

// BenchmarkOverheadAQHIWave measures one fully synchronous AQHI wave
// through the engine (execution + impact/error computation).
func BenchmarkOverheadAQHIWave(b *testing.B) {
	build := workloads.AirQuality(workloads.AirQualityConfig{Seed: 42})
	wf, store, err := build()
	if err != nil {
		b.Fatal(err)
	}
	inst, err := engine.NewInstance(wf, store, engine.InstanceConfig{TrainingMode: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.RunWave(engine.Sync{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverheadAQHIWaveObserved is BenchmarkOverheadAQHIWave with a
// metrics registry attached — the delta against the plain benchmark is the
// instrumentation overhead (acceptance bound: < 5%).
func BenchmarkOverheadAQHIWaveObserved(b *testing.B) {
	build := workloads.AirQuality(workloads.AirQualityConfig{Seed: 42})
	wf, store, err := build()
	if err != nil {
		b.Fatal(err)
	}
	inst, err := engine.NewInstance(wf, store, engine.InstanceConfig{TrainingMode: true})
	if err != nil {
		b.Fatal(err)
	}
	inst.Instrument(obs.New(obs.NewRegistry()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.RunWave(engine.Sync{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverheadAQHIWaveTraced adds full decision tracing into an
// in-memory ring on top of the metrics registry.
func BenchmarkOverheadAQHIWaveTraced(b *testing.B) {
	build := workloads.AirQuality(workloads.AirQualityConfig{Seed: 42})
	wf, store, err := build()
	if err != nil {
		b.Fatal(err)
	}
	inst, err := engine.NewInstance(wf, store, engine.InstanceConfig{TrainingMode: true})
	if err != nil {
		b.Fatal(err)
	}
	inst.Instrument(obs.New(obs.NewRegistry(), obs.NewRingSink(1024)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.RunWave(engine.Sync{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverheadLRBWave measures one fully synchronous Linear Road wave.
func BenchmarkOverheadLRBWave(b *testing.B) {
	build := workloads.LinearRoad(workloads.LinearRoadConfig{Seed: 42})
	wf, store, err := build()
	if err != nil {
		b.Fatal(err)
	}
	inst, err := engine.NewInstance(wf, store, engine.InstanceConfig{TrainingMode: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.RunWave(engine.Sync{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublicPipeline measures the end-to-end public-API lifecycle on
// the quickstart-sized workload (sanity benchmark for library adopters).
func BenchmarkPublicPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := smartflux.RunPipeline(buildPublic, nil, smartflux.PipelineConfig{
			TrainWaves: 40,
			ApplyWaves: 20,
			Session:    smartflux.SessionConfig{Seed: 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Apply == nil {
			b.Fatal("no apply phase")
		}
	}
}
