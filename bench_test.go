package smartflux_test

// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5), one per experiment, plus the §5.3 overhead microbenchmarks. The
// figure benchmarks run the full experiment pipeline at a reduced scale
// (Scale 0.12) so `go test -bench=.` completes in minutes; run
// cmd/experiments with -scale 1 for paper-length reproductions.

import (
	"io"
	"math/rand"
	"strconv"
	"testing"

	"smartflux"
	"smartflux/internal/core"
	"smartflux/internal/engine"
	"smartflux/internal/experiments"
	"smartflux/internal/kvstore"
	"smartflux/internal/metric"
	"smartflux/internal/ml"
	"smartflux/internal/ml/multilabel"
	"smartflux/internal/obs"
	"smartflux/workloads"
)

// benchRunner shares pipeline runs across figure benchmarks within one
// bench binary invocation.
var benchRunner = experiments.NewRunner(experiments.Config{Seed: 42, Scale: 0.12})

// BenchmarkFig03FireRiskGenerators regenerates Figure 3 (diurnal sensor
// series of the motivational fire-risk scenario).
func BenchmarkFig03FireRiskGenerators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig3(experiments.Config{Seed: 42})
		if len(res.Hours) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkClassifierSelection regenerates the §3.2 classifier-comparison
// table (ROC areas of the six algorithms).
func BenchmarkClassifierSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ClassifierSelection(benchRunner, 0.20)
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
	}
}

// BenchmarkFig07Correlation regenerates the Figure 7 correlation panels.
func BenchmarkFig07Correlation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(benchRunner, 0.20)
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
	}
}

// BenchmarkFig08LearningCurves regenerates the Figure 8 learning curves.
func BenchmarkFig08LearningCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
	}
}

// BenchmarkFig09PredictionError regenerates the Figure 9 measured/predicted
// error series.
func BenchmarkFig09PredictionError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
	}
}

// BenchmarkFig10Confidence regenerates the Figure 10 confidence curves.
func BenchmarkFig10Confidence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
	}
}

// BenchmarkFig11PolicyComparison regenerates the Figure 11 policy
// comparison (SmartFlux vs random/seq2/seq3/seq5).
func BenchmarkFig11PolicyComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
	}
}

// BenchmarkFig12ResourceSavings regenerates the Figure 12 execution/savings
// tables.
func BenchmarkFig12ResourceSavings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
	}
}

// --- §5.3 overhead microbenchmarks -------------------------------------

// BenchmarkOverheadImpactComputation measures one input-impact evaluation
// over a 1000-element container state (the per-wave Monitoring cost).
func BenchmarkOverheadImpactComputation(b *testing.B) {
	state := make(metric.State, 1000)
	baseline := make(metric.State, 1000)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		key := "r" + strconv.Itoa(i) + "/v"
		baseline[key] = rng.Float64() * 100
		state[key] = baseline[key] + rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := metric.Evaluate(metric.NewRelativeError, state, baseline); v < 0 {
			b.Fatal("negative metric")
		}
	}
}

// BenchmarkOverheadModelBuild measures predictor construction (the paper
// reports < 1 s; this is the dominant overhead source).
func BenchmarkOverheadModelBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var data multilabel.Dataset
	for i := 0; i < 300; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10}
		y := []int{0, 0}
		if x[0] > 5 {
			y[0] = 1
		}
		if x[1] > 5 {
			y[1] = 1
		}
		data.Append(x, y)
	}
	factory := func() ml.Classifier { return ml.NewForest(ml.ForestConfig{Seed: 1}) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewPredictor(factory, data, nil, core.FeatureOwnImpact); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverheadPrediction measures one per-wave classifier query.
func BenchmarkOverheadPrediction(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	var data multilabel.Dataset
	for i := 0; i < 300; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10}
		y := []int{boolToInt(x[0] > 5), boolToInt(x[1] > 5)}
		data.Append(x, y)
	}
	factory := func() ml.Classifier { return ml.NewForest(ml.ForestConfig{Seed: 1}) }
	predictor, err := core.NewPredictor(factory, data, nil, core.FeatureOwnImpact)
	if err != nil {
		b.Fatal(err)
	}
	impacts := []float64{4.2, 6.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := predictor.Scores(impacts); err != nil {
			b.Fatal(err)
		}
	}
}

func boolToInt(v bool) int {
	if v {
		return 1
	}
	return 0
}

// BenchmarkOverheadKVStorePut measures raw store write throughput.
func BenchmarkOverheadKVStorePut(b *testing.B) {
	store := kvstore.New()
	table, err := store.CreateTable("t", kvstore.TableOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := table.PutFloat("r"+strconv.Itoa(i%1000), "c", float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverheadKVStoreScan measures a full container snapshot (the
// read path of every impact computation).
func BenchmarkOverheadKVStoreScan(b *testing.B) {
	store := kvstore.New()
	table, err := store.CreateTable("t", kvstore.TableOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := table.PutFloat("r"+strconv.Itoa(i), "c", float64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := table.ScanFloats(kvstore.ScanOptions{}); len(got) != 1000 {
			b.Fatal("short scan")
		}
	}
}

// BenchmarkOverheadAQHIWave measures one fully synchronous AQHI wave
// through the engine (execution + impact/error computation).
func BenchmarkOverheadAQHIWave(b *testing.B) {
	build := workloads.AirQuality(workloads.AirQualityConfig{Seed: 42})
	wf, store, err := build()
	if err != nil {
		b.Fatal(err)
	}
	inst, err := engine.NewInstance(wf, store, engine.InstanceConfig{TrainingMode: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.RunWave(engine.Sync{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverheadAQHIWaveObserved is BenchmarkOverheadAQHIWave with a
// metrics registry attached — the delta against the plain benchmark is the
// instrumentation overhead (acceptance bound: < 5%).
func BenchmarkOverheadAQHIWaveObserved(b *testing.B) {
	build := workloads.AirQuality(workloads.AirQualityConfig{Seed: 42})
	wf, store, err := build()
	if err != nil {
		b.Fatal(err)
	}
	inst, err := engine.NewInstance(wf, store, engine.InstanceConfig{TrainingMode: true})
	if err != nil {
		b.Fatal(err)
	}
	inst.Instrument(obs.New(obs.NewRegistry()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.RunWave(engine.Sync{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverheadAQHIWaveTraced adds full decision tracing into an
// in-memory ring on top of the metrics registry.
func BenchmarkOverheadAQHIWaveTraced(b *testing.B) {
	build := workloads.AirQuality(workloads.AirQualityConfig{Seed: 42})
	wf, store, err := build()
	if err != nil {
		b.Fatal(err)
	}
	inst, err := engine.NewInstance(wf, store, engine.InstanceConfig{TrainingMode: true})
	if err != nil {
		b.Fatal(err)
	}
	inst.Instrument(obs.New(obs.NewRegistry(), obs.NewRingSink(1024)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.RunWave(engine.Sync{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverheadAQHIWaveSpans adds causal span emission into an
// in-memory span ring on top of metrics and decision tracing: the full
// observability stack. The delta against BenchmarkOverheadAQHIWaveTraced is
// the cost of span creation, attribute stamping and ring emission.
func BenchmarkOverheadAQHIWaveSpans(b *testing.B) {
	build := workloads.AirQuality(workloads.AirQualityConfig{Seed: 42})
	wf, store, err := build()
	if err != nil {
		b.Fatal(err)
	}
	inst, err := engine.NewInstance(wf, store, engine.InstanceConfig{TrainingMode: true})
	if err != nil {
		b.Fatal(err)
	}
	inst.Instrument(obs.New(obs.NewRegistry(), obs.NewRingSink(1024)).
		WithSpanSinks(obs.NewSpanRing(4096)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.RunWave(engine.Sync{}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSpansDisabledOverheadGuard asserts that the span hooks cost nothing
// measurable when spans are disabled: an observer with metrics but no span
// sinks (Spanning() false) must run waves within noise of a completely
// uninstrumented instance, preserving PR 1's <5% instrumentation budget.
// Each variant's best-of-trials is compared (minima are far more stable
// than means under CI scheduling noise); the threshold still leaves slack
// because this guard must never flake on loaded shared runners.
func TestSpansDisabledOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	waveTime := func(instrument bool) int64 {
		build := workloads.AirQuality(workloads.AirQualityConfig{Seed: 42})
		wf, store, err := build()
		if err != nil {
			t.Fatal(err)
		}
		inst, err := engine.NewInstance(wf, store, engine.InstanceConfig{TrainingMode: true})
		if err != nil {
			t.Fatal(err)
		}
		if instrument {
			// Metrics only, no span sinks: every span hook resolves to a
			// nil *Span and must do no further work.
			inst.Instrument(obs.New(obs.NewRegistry()))
		}
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := inst.RunWave(engine.Sync{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		return res.NsPerOp()
	}
	const trials = 3
	best := func(instrument bool) int64 {
		min := int64(0)
		for i := 0; i < trials; i++ {
			if v := waveTime(instrument); min == 0 || v < min {
				min = v
			}
		}
		return min
	}
	base, spansOff := best(false), best(true)
	if base <= 0 {
		t.Fatalf("degenerate baseline %dns", base)
	}
	overhead := 100 * (float64(spansOff) - float64(base)) / float64(base)
	t.Logf("wave: uninstrumented %dns, spans-disabled observer %dns (%.1f%% overhead)", base, spansOff, overhead)
	// 15% headroom over the 5% budget absorbs scheduler noise on shared CI
	// runners; a real regression (building IDs or attrs without a sink)
	// costs far more than that on a 6-step wave.
	if overhead > 15 {
		t.Errorf("spans-disabled observer adds %.1f%% per wave (budget <5%% + noise headroom); "+
			"a span hook is doing work without checking Spanning()", overhead)
	}
}

// BenchmarkOverheadLRBWave measures one fully synchronous Linear Road wave.
func BenchmarkOverheadLRBWave(b *testing.B) {
	build := workloads.LinearRoad(workloads.LinearRoadConfig{Seed: 42})
	wf, store, err := build()
	if err != nil {
		b.Fatal(err)
	}
	inst, err := engine.NewInstance(wf, store, engine.InstanceConfig{TrainingMode: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.RunWave(engine.Sync{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublicPipeline measures the end-to-end public-API lifecycle on
// the quickstart-sized workload (sanity benchmark for library adopters).
func BenchmarkPublicPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := smartflux.RunPipeline(buildPublic, nil, smartflux.PipelineConfig{
			TrainWaves: 40,
			ApplyWaves: 20,
			Session:    smartflux.SessionConfig{Seed: 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Apply == nil {
			b.Fatal("no apply phase")
		}
	}
}

// benchFanout builds a one-source, width-way fan-out workflow whose gated
// steps each burn real CPU, the shape the parallel wave scheduler exists
// for. Exported through smartflux_test for cmd/parbench via duplication;
// kept here so RunWave serial/parallel benchmarks compare like for like.
func benchFanout(width, work int) smartflux.BuildFunc {
	return func() (*smartflux.Workflow, *smartflux.Store, error) {
		store := smartflux.NewStore()
		wf := smartflux.NewWorkflow("fanout")
		src := &smartflux.Step{
			ID:      "src",
			Source:  true,
			Outputs: []smartflux.Container{{Table: "raw"}},
			Proc: smartflux.ProcessorFunc(func(ctx *smartflux.Context) error {
				t, err := ctx.Table("raw")
				if err != nil {
					return err
				}
				batch := smartflux.NewBatch()
				for i := 0; i < width; i++ {
					batch.PutFloat("k"+strconv.Itoa(i), "v", float64(ctx.Wave+i))
				}
				return t.Apply(batch)
			}),
		}
		if err := wf.AddStep(src); err != nil {
			return nil, nil, err
		}
		for i := 0; i < width; i++ {
			key := "k" + strconv.Itoa(i)
			out := "out" + strconv.Itoa(i)
			step := &smartflux.Step{
				ID:      smartflux.StepID("work" + strconv.Itoa(i)),
				Inputs:  []smartflux.Container{{Table: "raw", ColumnPrefix: key}},
				Outputs: []smartflux.Container{{Table: out}},
				QoD:     smartflux.QoD{MaxError: 0.05, Mode: smartflux.ModeAccumulate},
				Proc: smartflux.ProcessorFunc(func(ctx *smartflux.Context) error {
					raw, err := ctx.Table("raw")
					if err != nil {
						return err
					}
					dst, err := ctx.Table(out)
					if err != nil {
						return err
					}
					v, _ := raw.GetFloat(key, "v")
					acc := v
					for n := 0; n < work; n++ {
						acc = acc*1.0000001 + float64(n%7)
					}
					return dst.PutFloat("all", "x", acc)
				}),
			}
			if err := wf.AddStep(step); err != nil {
				return nil, nil, err
			}
		}
		if err := wf.Finalize(); err != nil {
			return nil, nil, err
		}
		return wf, store, nil
	}
}

// benchRunWave measures one wave of the fan-out workflow at a parallelism.
func benchRunWave(b *testing.B, par int) {
	wf, store, err := benchFanout(8, 200_000)()
	if err != nil {
		b.Fatal(err)
	}
	inst, err := engine.NewInstance(wf, store, engine.InstanceConfig{Parallelism: par})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.RunWave(engine.Sync{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunWaveSerial and BenchmarkRunWaveParallel compare the sequential
// wave loop against the worker-pool scheduler on an 8-way fan-out. The
// parallel variant pins 4 workers so the scheduler path is exercised (and
// its overhead visible) regardless of GOMAXPROCS; on a multi-core box it
// approaches width× faster, and both produce bit-identical results (see
// TestHarnessParallelismDeterminism).
func BenchmarkRunWaveSerial(b *testing.B)   { benchRunWave(b, 1) }
func BenchmarkRunWaveParallel(b *testing.B) { benchRunWave(b, 4) }

// benchForestFit measures fitting a 100-tree forest at a parallelism.
func benchForestFit(b *testing.B, par int) {
	rng := rand.New(rand.NewSource(11))
	n := 400
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		a, c := rng.Float64(), rng.Float64()
		x[i] = []float64{a, c}
		if (a > 0.5) != (c > 0.5) {
			y[i] = 1
		}
	}
	d := ml.Dataset{X: x, Y: y}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := ml.NewForest(ml.ForestConfig{Trees: 100, Seed: 7, Parallelism: par})
		if err := f.Fit(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestFitSerial and BenchmarkForestFitParallel compare
// sequential against concurrent tree fitting (4 workers) for the paper's
// 100-tree Random Forest; the fitted forests are bit-identical either way.
func BenchmarkForestFitSerial(b *testing.B)   { benchForestFit(b, 1) }
func BenchmarkForestFitParallel(b *testing.B) { benchForestFit(b, 4) }
