package smartflux_test

import (
	"math"
	"strconv"
	"testing"

	"smartflux"
	"smartflux/workloads"
)

// buildPublic constructs a small pipeline purely through the public API.
func buildPublic() (*smartflux.Workflow, *smartflux.Store, error) {
	store := smartflux.NewStore()
	wf := smartflux.NewWorkflow("public")
	steps := []*smartflux.Step{
		{
			ID:      "src",
			Source:  true,
			Outputs: []smartflux.Container{{Table: "raw"}},
			Proc: smartflux.ProcessorFunc(func(ctx *smartflux.Context) error {
				t, err := ctx.Table("raw")
				if err != nil {
					return err
				}
				batch := smartflux.NewBatch()
				for i := 0; i < 5; i++ {
					v := 30 + 5*math.Sin(float64(ctx.Wave)/3+float64(i))
					batch.PutFloat("s"+strconv.Itoa(i), "v", v)
				}
				return t.Apply(batch)
			}),
		},
		{
			ID:      "sum",
			Inputs:  []smartflux.Container{{Table: "raw"}},
			Outputs: []smartflux.Container{{Table: "agg"}},
			QoD:     smartflux.QoD{MaxError: 0.05, Mode: smartflux.ModeAccumulate},
			Proc: smartflux.ProcessorFunc(func(ctx *smartflux.Context) error {
				raw, err := ctx.Table("raw")
				if err != nil {
					return err
				}
				out, err := ctx.Table("agg")
				if err != nil {
					return err
				}
				var sum float64
				for _, c := range raw.Scan(smartflux.ScanOptions{}) {
					if v, err := smartflux.DecodeFloat(c.Version.Value); err == nil {
						sum += v
					}
				}
				return out.PutFloat("all", "sum", sum)
			}),
		},
	}
	for _, s := range steps {
		if err := wf.AddStep(s); err != nil {
			return nil, nil, err
		}
	}
	if err := wf.Finalize(); err != nil {
		return nil, nil, err
	}
	return wf, store, nil
}

func TestPublicAPIPipeline(t *testing.T) {
	res, err := smartflux.RunPipeline(buildPublic, nil, smartflux.PipelineConfig{
		TrainWaves: 80,
		ApplyWaves: 60,
		Session:    smartflux.SessionConfig{Seed: 1, Thresholds: []float64{0.2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Apply.TotalLiveExecutions() >= res.Apply.TotalSyncExecutions() {
		t.Error("no savings through the public API")
	}
	if _, ok := res.Apply.Reports["sum"]; !ok {
		t.Error("missing report for gated step")
	}
}

func TestPublicAPIPolicies(t *testing.T) {
	harness, err := smartflux.NewHarness(buildPublic, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []smartflux.Decider{
		smartflux.SyncPolicy(),
		smartflux.SeqPolicy(2),
		smartflux.RandomPolicy(0.5, 1),
		smartflux.OraclePolicy(),
	} {
		if policy.Name() == "" {
			t.Error("empty policy name")
		}
	}
	res, err := harness.Run(10, smartflux.SeqPolicy(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Waves != 10 {
		t.Errorf("waves = %d", res.Waves)
	}
}

func TestPublicAPIStore(t *testing.T) {
	store := smartflux.NewStore()
	table, err := store.CreateTable("t", smartflux.TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := table.PutFloat("r", "c", 2.5); err != nil {
		t.Fatal(err)
	}
	v, ok := table.GetFloat("r", "c")
	if !ok || v != 2.5 {
		t.Errorf("GetFloat = %v, %v", v, ok)
	}
	raw := smartflux.EncodeFloat(7)
	back, err := smartflux.DecodeFloat(raw)
	if err != nil || back != 7 {
		t.Errorf("codec roundtrip = %v, %v", back, err)
	}
}

func TestPublicAPIMetricTracker(t *testing.T) {
	tracker := smartflux.NewMetricTracker(func() smartflux.Metric {
		return &countingMetric{}
	}, smartflux.ModeAccumulate)
	tracker.Observe(smartflux.State{"a": 1})
	got := tracker.Observe(smartflux.State{"a": 2})
	if got != 1 {
		t.Errorf("custom metric value = %v, want 1 (one modified element)", got)
	}
}

// countingMetric counts modified elements.
type countingMetric struct{ n int }

func (c *countingMetric) Update(cur, prev float64)                { c.n++ }
func (c *countingMetric) Compute(smartflux.MetricContext) float64 { return float64(c.n) }
func (c *countingMetric) Reset()                                  { c.n = 0 }

func TestPublicAPIParseHelpers(t *testing.T) {
	c, err := smartflux.ParseContainer("t/prefix")
	if err != nil || c.Table != "t" || c.ColumnPrefix != "prefix" {
		t.Errorf("ParseContainer = %+v, %v", c, err)
	}
	spec, err := smartflux.ParseSpec([]byte(`{"name":"x","steps":[]}`))
	if err != nil || spec.Name != "x" {
		t.Errorf("ParseSpec = %+v, %v", spec, err)
	}
}

func TestWorkloadBuilders(t *testing.T) {
	builders := map[string]smartflux.BuildFunc{
		"lrb":      workloads.LinearRoad(workloads.LinearRoadConfig{Seed: 1, Vehicles: 200}),
		"aqhi":     workloads.AirQuality(workloads.AirQualityConfig{Seed: 1}),
		"firerisk": workloads.FireRisk(workloads.FireRiskConfig{Seed: 1}),
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			wf, store, err := build()
			if err != nil {
				t.Fatal(err)
			}
			if wf == nil || store == nil || !wf.Finalized() {
				t.Error("builder must return a finalized workflow and store")
			}
			inst, err := smartflux.NewInstance(wf, store)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := inst.RunWave(smartflux.SyncPolicy()); err != nil {
				t.Fatal(err)
			}
		})
	}
	if workloads.AirQualityRiskClass(2) != "low" {
		t.Error("risk class passthrough")
	}
}

func TestPublicAPIMetricDSL(t *testing.T) {
	factory, err := smartflux.ParseMetricDSL("sum(absdelta) * m / (baselinesum * n)")
	if err != nil {
		t.Fatal(err)
	}
	tracker := smartflux.NewMetricTracker(factory, smartflux.ModeCancellation)
	tracker.Observe(smartflux.State{"a": 10, "b": 10})
	got := tracker.Observe(smartflux.State{"a": 12, "b": 10})
	want := 2.0 * 1 / (20 * 2)
	if got != want {
		t.Errorf("DSL metric through facade = %v, want %v", got, want)
	}
	if _, err := smartflux.ParseMetricDSL("(("); err == nil {
		t.Error("bad expression must fail")
	}
}

func TestPublicAPIDriftDetector(t *testing.T) {
	d := smartflux.NewDriftDetector(10, 0.3)
	for i := 0; i < 10; i++ {
		d.Observe(false)
	}
	if !d.Drifted() {
		t.Error("all-disagreement window must signal drift")
	}
}
