GO ?= go

.PHONY: all build test race vet fmt-check lint lint-report lint-diff check chaos chaos-crash chaos-cluster chaos-partition chaos-trace bench wirebench wirebench-smoke clusterbench clusterbench-smoke fuzz

all: check

## build: compile every package and command
build:
	$(GO) build ./...

## test: run the full test suite
test:
	$(GO) test ./...

## race: run the test suite under the race detector
race:
	$(GO) test -race ./...

## vet: the stock go vet checks
vet:
	$(GO) vet ./...

## fmt-check: fail when any file is not gofmt-clean (prints the offenders)
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

## lint: sflint, the project-specific determinism and concurrency analyzers
lint:
	$(GO) run ./cmd/sflint ./...

## lint-diff: sflint restricted to packages changed vs origin/main (or REF=...)
## — the fast inner-loop variant of `make lint`
REF ?= origin/main
lint-diff:
	$(GO) run ./cmd/sflint -diff $(REF) ./...

## lint-report: machine-readable sflint report (schema v1) for CI artifacts.
## Written even when findings exist; the lint target is what gates.
lint-report:
	$(GO) run ./cmd/sflint -json ./... > sflint-report.json || true
	@wc -c sflint-report.json

## chaos: the fault-injection suite under the race detector — seeded
## error/disconnect/latency injection through pipeline, store and transport,
## asserting bit-identical results and leak-free churn (DESIGN.md §10)
chaos:
	$(GO) test -race -run 'TestChaos' -v ./...

## chaos-crash: the crash-durability suite under the race detector — seeded
## crashes mid-WAL, at wave boundaries, during snapshots and with torn final
## records, asserting bit-identical recovery (DESIGN.md §11)
chaos-crash:
	$(GO) test -race -run 'TestCrashChaos' -v .

## chaos-cluster: the shard-kill chaos suite under the race detector — a
## seeded kill partitions one primary of a 3-shard replicated cluster mid-run,
## the replica is promoted, the dead node rejoins and catches up, and the
## merged cluster dump must stay bit-identical to a single-store run
## (DESIGN.md §14). Failover spans land in cluster-spans.jsonl (CI artifact).
chaos-cluster:
	rm -f cluster-spans.jsonl
	SMARTFLUX_CHAOS_SPAN_OUT=$(CURDIR)/cluster-spans.jsonl $(GO) test -race -run 'TestClusterChaos' -v .

## chaos-partition: the partition chaos suite under the race detector —
## seeded symmetric and asymmetric (one-way link) partitions cut primaries
## off mid-run, replicas are promoted under bumped epochs, stale-timeline
## primaries fence themselves and ack nothing until Reset + rejoin, and the
## healed merged dump must stay bit-identical to a single-store run with
## deterministic fencing/breaker counters across reruns (DESIGN.md §15).
## Fencing and breaker spans land in partition-spans.jsonl (CI artifact).
chaos-partition:
	rm -f partition-spans.jsonl
	SMARTFLUX_CHAOS_SPAN_OUT=$(CURDIR)/partition-spans.jsonl $(GO) test -race -run 'TestPartitionChaos' -v .

## chaos-trace: the chaos suite with span emission enabled — every run
## appends causal spans + decision events to chaos-spans.jsonl (several runs
## share the stream; sftrace's last-wins duplicate handling absorbs the ID
## reuse), then sftrace analyzes it offline into sftrace-report.txt. CI
## uploads both as artifacts.
chaos-trace:
	rm -f chaos-spans.jsonl
	SMARTFLUX_CHAOS_SPAN_OUT=$(CURDIR)/chaos-spans.jsonl $(GO) test -race -run 'TestChaos' .
	$(GO) run ./cmd/sftrace -waves 6 chaos-spans.jsonl > sftrace-report.txt
	@head -n 40 sftrace-report.txt

## wirebench: the kvnet wire benchmark (gob baseline vs binary framed codec,
## sync vs pipelined, 1/8/64 clients) writing BENCH_PR7.json (DESIGN.md §13).
## The ≥8-client cells need GOMAXPROCS >= 4 or -force.
wirebench:
	$(GO) run ./cmd/wirebench -force -out BENCH_PR7.json

## wirebench-smoke: tiny-op-count wirebench pass — a correctness smoke for the
## benchmark harness itself (numbers meaningless); part of make check
wirebench-smoke:
	$(GO) run ./cmd/wirebench -smoke -force -out /tmp/wirebench-smoke.json

## clusterbench: sharded-vs-single throughput and failover-blip latency for
## the kvstore cluster (1 vs 3 shards, a seeded shard-kill run measuring the
## probe-driven promotion blip, and an asymmetric link-cut run measuring the
## fenced-failover blip — both checking no acked write was lost), writing
## BENCH_PR10.json (DESIGN.md §14–15)
clusterbench:
	$(GO) run ./cmd/clusterbench -out BENCH_PR10.json

## clusterbench-smoke: tiny-op-count clusterbench pass — a correctness smoke
## for the cluster bench harness (numbers meaningless); part of make check
clusterbench-smoke:
	$(GO) run ./cmd/clusterbench -smoke -out /tmp/clusterbench-smoke.json

## fuzz: run the wire-protocol fuzzers for 30s each (nightly CI job; crashers
## land in internal/kvstore/wire/testdata/fuzz and are uploaded as artifacts).
## Separate invocations: `go test -fuzz` accepts only one target at a time.
fuzz:
	$(GO) test -run xxx -fuzz FuzzReadFrame -fuzztime 30s ./internal/kvstore/wire
	$(GO) test -run xxx -fuzz 'FuzzReader$$' -fuzztime 30s ./internal/kvstore/wire

## check: the pre-PR gate — build, vet, gofmt, lint, tests, race, chaos,
## chaos-crash, chaos-cluster, chaos-partition, and the
## wirebench/clusterbench smoke passes
check: build vet fmt-check lint test race chaos chaos-crash chaos-cluster chaos-partition wirebench-smoke clusterbench-smoke

## bench: overhead microbenchmarks (§5.3 + instrumentation overhead), the
## serial-vs-parallel comparison (BENCH_PR2.json) and the WAL-on vs WAL-off
## wave-throughput comparison (BENCH_PR5.json)
bench:
	$(GO) test -run xxx -bench 'BenchmarkOverhead' -benchtime 1000x .
	$(GO) test -run xxx -bench 'BenchmarkRunWave|BenchmarkForestFit' -benchtime 10x .
	$(GO) run ./cmd/parbench -out BENCH_PR2.json
	@cat BENCH_PR2.json
	$(GO) run ./cmd/durbench -out BENCH_PR5.json
	@cat BENCH_PR5.json
	$(GO) run ./cmd/clusterbench -out BENCH_PR10.json
	@cat BENCH_PR10.json
