GO ?= go

.PHONY: all build test race vet check bench

all: check

## build: compile every package and command
build:
	$(GO) build ./...

## test: run the full test suite
test:
	$(GO) test ./...

## race: run the test suite under the race detector
race:
	$(GO) test -race ./...

## vet: static analysis
vet:
	$(GO) vet ./...

## check: the pre-PR gate — build, vet, tests, race
check: build vet test race

## bench: overhead microbenchmarks (§5.3 + instrumentation overhead) plus
## the serial-vs-parallel comparison, recorded to BENCH_PR2.json
bench:
	$(GO) test -run xxx -bench 'BenchmarkOverhead' -benchtime 1000x .
	$(GO) test -run xxx -bench 'BenchmarkRunWave|BenchmarkForestFit' -benchtime 10x .
	$(GO) run ./cmd/parbench -out BENCH_PR2.json
	@cat BENCH_PR2.json
